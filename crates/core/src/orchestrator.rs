//! Cross-experiment sweep orchestration: one measurement cache, one worker
//! pool, one place to resume from.
//!
//! Every experiment in the suite boils down to "measure this benchmark under
//! these setups". Before the orchestrator each experiment owned a private
//! [`Harness`] and re-simulated configurations other experiments (or earlier
//! runs of `repro all`) had already measured. The orchestrator generalizes
//! [`Harness::measure_sweep`] across experiments:
//!
//! - a **process-wide cache** of verified measurements, keyed by every
//!   timing-relevant setup factor (benchmark, machine configuration,
//!   optimization level, link order, text offset, stack shift, environment,
//!   input size);
//! - **work-stealing parallel execution** over the deduplicated set of
//!   uncached setups;
//! - a **capacity bound**: the cache can be capped (oldest-record-first
//!   eviction) via [`Orchestrator::set_cache_cap`] or, for the global
//!   instance, the `BIASLAB_CACHE_CAP` environment variable — evictions
//!   are counted in the instrumentation, and results never depend on
//!   retention. Storage is split into N shards keyed by the
//!   [`MeasureKey::digest`] (`BIASLAB_CACHE_SHARDS`, default
//!   [`DEFAULT_CACHE_SHARDS`]) so concurrent sweep workers and
//!   `biaslab serve` threads do not serialize on one map lock; the cap
//!   and FIFO order stay global, so the shard count never changes what
//!   is evicted;
//! - **persistence**: records round-trip through a JSON-lines file under
//!   `results/`, so an interrupted `repro all` resumes instead of
//!   restarting;
//! - **instrumentation**: hit/miss/simulation counts and wall/busy time,
//!   reported per experiment (on stderr — experiment stdout is
//!   byte-identical to the serial path).
//!
//! Caching is sound because the simulator is deterministic and the key
//! covers every factor that can change a run. Machine configuration and
//! environment are folded to FNV-64 digests of a canonical named-field
//! rendering ([`machine_digest`], [`env_digest`]) — not of `Debug` output,
//! whose text can change with derive or formatting churn and silently
//! alias or split cache keys. The renderings destructure every field, so
//! adding a field to [`MachineConfig`] without extending the digest is a
//! compile error. Equal digests from unequal configs are astronomically
//! unlikely, and each cached [`Measurement`] still carries its
//! human-readable setup summary as a cross-check. Warm-cache repetition
//! studies
//! ([`Harness::measure_repeated`] with [`crate::harness::CachePolicy::Warm`])
//! never go through the cache: their later repetitions depend on machine
//! state, not just the setup.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, OnceLock};
use std::time::{Duration, Instant};

use biaslab_toolchain::load::Environment;
use biaslab_toolchain::OptLevel;
use biaslab_uarch::{Counters, MachineConfig, RunError};
use biaslab_workloads::{benchmark_by_name, InputSize};
use parking_lot::Mutex;

use crate::faults::{self, site};
use crate::harness::{Harness, MeasureError, Measurement};
use crate::jsonl::{field, field_str, field_u64, fnv64, sync_parent_dir};
use crate::setup::{ExperimentSetup, LinkOrder};
use crate::sync::{lock_unpoisoned, wait_timeout_unpoisoned, wait_unpoisoned};
use crate::telemetry::{self, CacheOutcome, Counter, MetricsRegistry};

/// Content-addresses a machine configuration for the cache key: FNV-64
/// over a canonical `field=value` rendering of every timing-relevant
/// field. The destructuring below is exhaustive on purpose — adding a
/// field to [`MachineConfig`] without deciding how it digests is a
/// compile error here, not a silent cache aliasing bug.
#[must_use]
pub fn machine_digest(m: &MachineConfig) -> u64 {
    let cache = |c: &biaslab_uarch::cache::CacheConfig| {
        let biaslab_uarch::cache::CacheConfig {
            size,
            ways,
            line,
            hit_latency,
        } = *c;
        format!("size={size} ways={ways} line={line} hit_latency={hit_latency}")
    };
    let tlb = |t: &biaslab_uarch::tlb::TlbConfig| {
        let biaslab_uarch::tlb::TlbConfig {
            entries,
            ways,
            miss_penalty,
        } = *t;
        format!("entries={entries} ways={ways} miss_penalty={miss_penalty}")
    };
    let MachineConfig {
        name,
        l1i,
        l1d,
        l2,
        memory_latency,
        itlb,
        dtlb,
        branch,
        fetch_bytes,
        mul_latency,
        div_latency,
        l1d_banks,
        bank_conflict_penalty,
        bank_window,
        l1d_next_line_prefetch,
        overlap,
        max_instructions,
    } = m;
    let biaslab_uarch::branch::BranchConfig {
        gshare_bits,
        btb_entries,
        ras_depth,
        mispredict_penalty,
        btb_miss_penalty,
    } = *branch;
    fnv64(&format!(
        "machine name={name} l1i=[{}] l1d=[{}] l2=[{}] memory_latency={memory_latency} \
         itlb=[{}] dtlb=[{}] branch=[gshare_bits={gshare_bits} btb_entries={btb_entries} \
         ras_depth={ras_depth} mispredict_penalty={mispredict_penalty} \
         btb_miss_penalty={btb_miss_penalty}] fetch_bytes={fetch_bytes} \
         mul_latency={mul_latency} div_latency={div_latency} l1d_banks={l1d_banks} \
         bank_conflict_penalty={bank_conflict_penalty} bank_window={bank_window} \
         l1d_next_line_prefetch={l1d_next_line_prefetch} overlap_bits={:016x} \
         max_instructions={max_instructions}",
        cache(l1i),
        cache(l1d),
        cache(l2),
        tlb(itlb),
        tlb(dtlb),
        overlap.to_bits(),
    ))
}

/// Content-addresses a loader environment for the cache key: FNV-64 over
/// its variables (`name=value`, in order) and total stack footprint.
#[must_use]
pub fn env_digest(e: &Environment) -> u64 {
    let mut canon = format!("env stack_bytes={}", e.stack_bytes());
    for v in e.vars() {
        canon.push_str(&format!(" {}={}", v.name, v.value));
    }
    fnv64(&canon)
}

/// The cache key: every factor that can influence a measurement.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MeasureKey {
    /// Benchmark name.
    pub bench: String,
    /// [`machine_digest`] of the machine configuration.
    pub machine: u64,
    /// Optimization level.
    pub opt: OptLevel,
    /// Link order of the benchmark's objects.
    pub link_order: LinkOrder,
    /// Linker text-base offset in bytes.
    pub text_offset: u32,
    /// Loader stack shift in bytes.
    pub stack_shift: u32,
    /// [`env_digest`] of the loader environment.
    pub env: u64,
    /// Input size.
    pub size: InputSize,
}

impl MeasureKey {
    /// Builds the key for measuring `bench` under `setup` at `size`.
    #[must_use]
    pub fn new(bench: &str, setup: &ExperimentSetup, size: InputSize) -> MeasureKey {
        MeasureKey {
            bench: bench.to_owned(),
            machine: machine_digest(&setup.machine),
            opt: setup.opt,
            link_order: setup.link_order,
            text_offset: setup.text_offset,
            stack_shift: setup.stack_shift,
            env: env_digest(&setup.env),
            size,
        }
    }

    /// A stable FNV-64 digest of the whole key — the `key` field telemetry
    /// events and spans carry, so a trace can correlate every cache
    /// interaction with the measurement it was about without embedding
    /// eight setup fields per event.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let MeasureKey {
            bench,
            machine,
            opt,
            link_order,
            text_offset,
            stack_shift,
            env,
            size,
        } = self;
        fnv64(&format!(
            "key bench={bench} machine={machine:016x} opt={opt} order={} \
             text_offset={text_offset} stack_shift={stack_shift} env={env:016x} size={}",
            order_str(*link_order),
            size_str(*size),
        ))
    }
}

/// A snapshot of the orchestrator's instrumentation counters.
///
/// Subtract two snapshots ([`OrchestratorStats::delta`]) to report one
/// experiment's share.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OrchestratorStats {
    /// Measurement requests served from the cache.
    pub hits: u64,
    /// Measurement requests that missed the cache.
    pub misses: u64,
    /// Simulations actually run (≤ `misses`: duplicate requests within one
    /// sweep simulate once).
    pub simulated: u64,
    /// Records restored from a persisted results file.
    pub loaded: u64,
    /// Stale records dropped while loading a persisted results file:
    /// foreign versions and benchmarks this build does not know.
    pub pruned: u64,
    /// Current-version records dropped while loading because they were
    /// torn or corrupt (truncated line, checksum mismatch) — evidence of a
    /// crashed or interrupted writer, counted separately from ordinary
    /// staleness.
    pub quarantined: u64,
    /// Sweeps executed.
    pub sweeps: u64,
    /// Cached records dropped by the capacity policy.
    pub evictions: u64,
    /// Wall-clock time spent inside sweeps, in microseconds.
    pub sweep_wall_us: u64,
    /// Summed worker busy time across sweeps, in microseconds.
    pub busy_us: u64,
    /// Entries in the cache at snapshot time.
    pub cached: u64,
}

impl OrchestratorStats {
    /// Counter increments since an `earlier` snapshot (`cached` stays
    /// absolute: it is a level, not a counter).
    #[must_use]
    pub fn delta(&self, earlier: &OrchestratorStats) -> OrchestratorStats {
        OrchestratorStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            simulated: self.simulated - earlier.simulated,
            loaded: self.loaded - earlier.loaded,
            pruned: self.pruned - earlier.pruned,
            quarantined: self.quarantined - earlier.quarantined,
            sweeps: self.sweeps - earlier.sweeps,
            evictions: self.evictions - earlier.evictions,
            sweep_wall_us: self.sweep_wall_us - earlier.sweep_wall_us,
            busy_us: self.busy_us - earlier.busy_us,
            cached: self.cached,
        }
    }
}

impl fmt::Display for OrchestratorStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cache {} hit / {} miss ({} simulated, {} in cache, {} evicted, {} pruned, \
             {} quarantined), {} sweep(s) in {:.2}s wall / {:.2}s busy",
            self.hits,
            self.misses,
            self.simulated,
            self.cached,
            self.evictions,
            self.pruned,
            self.quarantined,
            self.sweeps,
            self.sweep_wall_us as f64 / 1e6,
            self.busy_us as f64 / 1e6,
        )
    }
}

/// The process-wide sweep orchestrator (see the module docs).
///
/// # Examples
///
/// ```
/// use biaslab_core::orchestrator::Orchestrator;
/// use biaslab_core::setup::ExperimentSetup;
/// use biaslab_toolchain::OptLevel;
/// use biaslab_uarch::MachineConfig;
/// use biaslab_workloads::InputSize;
///
/// let orch = Orchestrator::new();
/// let h = orch.harness("hmmer").expect("known benchmark");
/// let setup = ExperimentSetup::default_on(MachineConfig::core2(), OptLevel::O2);
/// let first = orch.measure(&h, &setup, InputSize::Test)?;
/// let again = orch.measure(&h, &setup, InputSize::Test)?; // a cache hit
/// assert_eq!(first.counters, again.counters);
/// assert_eq!(orch.stats().hits, 1);
/// # Ok::<(), biaslab_core::harness::MeasureError>(())
/// ```
#[derive(Debug)]
pub struct Orchestrator {
    harnesses: Mutex<HashMap<String, Arc<Harness>>>,
    cache: ShardedCache,
    /// Keys a [`Orchestrator::measure`] leader is currently simulating.
    /// Concurrent requesters of the same key wait on the leader's cell
    /// (single-flight) instead of re-simulating; they count as hits.
    inflight: Mutex<HashMap<MeasureKey, Arc<InflightCell>>>,
    /// The instrumentation registry. [`OrchestratorStats`] is a typed
    /// snapshot of it; the handles below are the same counters, held so
    /// hot paths skip the by-name lookup. Per-instance on purpose:
    /// tests create private orchestrators with exact-count assertions.
    metrics: MetricsRegistry,
    hits: Counter,
    misses: Counter,
    simulated: Counter,
    loaded: Counter,
    pruned: Counter,
    quarantined: Counter,
    sweeps: Counter,
    evictions: Counter,
    sweep_wall_us: Counter,
    busy_us: Counter,
    watchdog_fired: Counter,
    watchdog_retries: Counter,
    watchdog_quarantined: Counter,
    persist_degraded: Counter,
    /// Set once [`Orchestrator::persist`] gives up on the results file:
    /// later calls skip I/O entirely (in-memory-only operation).
    degraded: AtomicBool,
}

impl Default for Orchestrator {
    fn default() -> Orchestrator {
        Orchestrator::with_cache_shards(DEFAULT_CACHE_SHARDS)
    }
}

impl Orchestrator {
    /// An orchestrator whose measurement cache is split into `shards`
    /// shards (clamped to at least one). [`Orchestrator::new`] uses
    /// [`DEFAULT_CACHE_SHARDS`]; the global instance reads
    /// `BIASLAB_CACHE_SHARDS`. The shard count is a concurrency knob
    /// only — cap, eviction order and eviction counts are identical at
    /// any value.
    #[must_use]
    pub fn with_cache_shards(shards: usize) -> Orchestrator {
        let metrics = MetricsRegistry::new();
        Orchestrator {
            harnesses: Mutex::default(),
            cache: ShardedCache::new(shards),
            inflight: Mutex::default(),
            hits: metrics.counter("orch.hits"),
            misses: metrics.counter("orch.misses"),
            simulated: metrics.counter("orch.simulated"),
            loaded: metrics.counter("orch.loaded"),
            pruned: metrics.counter("orch.pruned"),
            quarantined: metrics.counter("orch.quarantined"),
            sweeps: metrics.counter("orch.sweeps"),
            evictions: metrics.counter("orch.evictions"),
            sweep_wall_us: metrics.counter("orch.sweep_wall_us"),
            busy_us: metrics.counter("orch.busy_us"),
            watchdog_fired: metrics.counter("orch.watchdog_fired"),
            watchdog_retries: metrics.counter("orch.watchdog_retries"),
            watchdog_quarantined: metrics.counter("orch.watchdog_quarantined"),
            persist_degraded: metrics.counter("orch.persist_degraded"),
            degraded: AtomicBool::new(false),
            metrics,
        }
    }
}

/// What an in-flight cell holds (std primitives — the offline
/// `parking_lot` stand-in has no condvar).
#[derive(Debug, Default)]
enum CellState {
    /// The leader is simulating; waiters block on `ready`.
    #[default]
    Pending,
    /// The leader published its result (boxed: a cell spends its life as
    /// `Pending`, the result only passes through on the way to the cache).
    Done(Box<Result<Measurement, MeasureError>>),
    /// The leader died without publishing (it panicked). Waiters go back
    /// to [`Orchestrator::measure_request`] and elect a new leader.
    Abandoned,
}

/// One in-flight simulation: the leader moves `state` from `Pending` to
/// `Done` and notifies; waiters block on `ready`. If the leader panics
/// instead, its [`LeaderGuard`] moves the state to `Abandoned` during
/// unwinding, so waiters take over rather than deadlock.
#[derive(Debug, Default)]
struct InflightCell {
    state: StdMutex<CellState>,
    ready: Condvar,
}

/// Panic-safety for the single-flight leader: until disarmed by a
/// successful publish, dropping the guard (normally, or during a panic's
/// unwind) retires the in-flight entry, marks the cell `Abandoned` and
/// wakes every waiter. This is what makes leader takeover work — the old
/// protocol left waiters blocked forever on a poisoned cell.
struct LeaderGuard<'a> {
    orch: &'a Orchestrator,
    key: &'a MeasureKey,
    cell: &'a InflightCell,
    armed: bool,
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        self.orch.inflight.lock().remove(self.key);
        *lock_unpoisoned(&self.cell.state) = CellState::Abandoned;
        self.cell.ready.notify_all();
    }
}

/// A deadline-bounded request ([`Orchestrator::measure_deadline`]) ran out
/// of wall-clock time before a result was available. Distinct from every
/// [`MeasureError`]: the measurement itself neither ran nor failed, so
/// nothing is cached and a later request can still succeed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineExceeded;

impl fmt::Display for DeadlineExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deadline exceeded before the measurement completed")
    }
}

impl std::error::Error for DeadlineExceeded {}

/// How many shards [`Orchestrator::new`] splits the measurement cache
/// into. Sweep workers and `biaslab serve` worker threads publish
/// concurrently; sharding keeps their map accesses from serializing on
/// one lock while the cheap FIFO bookkeeping stays global.
pub const DEFAULT_CACHE_SHARDS: usize = 8;

/// The measurement cache with an optional FIFO capacity bound, split
/// into N shards keyed by the [`MeasureKey::digest`].
///
/// Record storage is per-shard (`shards[digest % N]`), so concurrent
/// lookups and publishes to different keys do not contend. The capacity
/// policy stays **global**: one insertion-order queue and one cap in
/// `meta`, exactly the semantics the unsharded cache had — eviction is
/// oldest-record-first across the whole cache, never per shard, so
/// `BIASLAB_CACHE_CAP` means the same number of records at any shard
/// count (a pinned regression test holds eviction counts identical for
/// 1, 2 and 8 shards on a deterministic workload).
///
/// Lock order is shard → meta → (victim shards), with each lock released
/// before the next class is taken — an insert never holds its shard lock
/// while removing a victim, so two shards are never held at once.
/// Correctness never depends on retention: [`Orchestrator::measure`] and
/// [`Orchestrator::sweep`] hand results back directly, so an evicted
/// record only costs a re-simulation if it is requested again.
#[derive(Debug)]
struct ShardedCache {
    shards: Vec<Mutex<HashMap<MeasureKey, Result<Measurement, MeasureError>>>>,
    meta: Mutex<CacheMeta>,
}

/// The global part of the capacity policy (see [`ShardedCache`]).
#[derive(Debug, Default)]
struct CacheMeta {
    /// Insertion order of every key across all shards (FIFO eviction
    /// queue).
    order: VecDeque<MeasureKey>,
    /// Total records across all shards. Tracked here so eviction never
    /// has to lock every shard to count.
    len: usize,
    /// Maximum records to retain; `None` is unbounded.
    cap: Option<usize>,
}

impl CacheMeta {
    /// Pops oldest keys until the cap is respected. The caller removes
    /// the returned victims from their shards after releasing this lock.
    fn pop_over_cap(&mut self) -> Vec<MeasureKey> {
        let mut victims = Vec::new();
        while self.cap.is_some_and(|cap| self.len > cap) {
            let Some(oldest) = self.order.pop_front() else {
                break;
            };
            self.len -= 1;
            victims.push(oldest);
        }
        victims
    }
}

impl Default for ShardedCache {
    fn default() -> ShardedCache {
        ShardedCache::new(DEFAULT_CACHE_SHARDS)
    }
}

impl ShardedCache {
    fn new(shards: usize) -> ShardedCache {
        ShardedCache {
            shards: (0..shards.max(1)).map(|_| Mutex::default()).collect(),
            meta: Mutex::default(),
        }
    }

    fn shard(
        &self,
        key: &MeasureKey,
    ) -> &Mutex<HashMap<MeasureKey, Result<Measurement, MeasureError>>> {
        &self.shards[(key.digest() as usize) % self.shards.len()]
    }

    fn get(&self, key: &MeasureKey) -> Option<Result<Measurement, MeasureError>> {
        self.shard(key).lock().get(key).cloned()
    }

    fn contains_key(&self, key: &MeasureKey) -> bool {
        self.shard(key).lock().contains_key(key)
    }

    fn len(&self) -> usize {
        self.meta.lock().len
    }

    fn cap(&self) -> Option<usize> {
        self.meta.lock().cap
    }

    fn set_cap(&self, cap: Option<usize>) -> Vec<MeasureKey> {
        let victims = {
            let mut meta = self.meta.lock();
            meta.cap = cap;
            meta.pop_over_cap()
        };
        self.remove_victims(&victims);
        victims
    }

    /// Inserts a record, evicting oldest-first while over the cap. Returns
    /// the evicted keys (empty in the common case — no allocation) so the
    /// caller can account for each one. Replacing an existing key keeps
    /// its original insertion-order entry, as the unsharded cache did.
    fn insert(&self, key: MeasureKey, value: Result<Measurement, MeasureError>) -> Vec<MeasureKey> {
        use std::collections::hash_map::Entry;
        let ordered = {
            let mut shard = self.shard(&key).lock();
            match shard.entry(key) {
                Entry::Occupied(mut slot) => {
                    let _ = slot.insert(value);
                    return Vec::new();
                }
                Entry::Vacant(slot) => {
                    let ordered = slot.key().clone();
                    slot.insert(value);
                    ordered
                }
            }
        };
        let victims = {
            let mut meta = self.meta.lock();
            meta.order.push_back(ordered);
            meta.len += 1;
            meta.pop_over_cap()
        };
        self.remove_victims(&victims);
        victims
    }

    /// Removes evicted keys from their shards (meta already dropped them).
    fn remove_victims(&self, victims: &[MeasureKey]) {
        for v in victims {
            self.shard(v).lock().remove(v);
        }
    }

    /// The persistence lines of every successful record, shard by shard
    /// (the caller sorts, so shard iteration order does not matter).
    fn record_lines(&self) -> Vec<String> {
        let mut lines = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock();
            lines.extend(
                shard
                    .iter()
                    .filter_map(|(k, r)| r.as_ref().ok().map(|m| record_line(k, m))),
            );
        }
        lines
    }
}

impl Orchestrator {
    /// A fresh orchestrator with an empty cache (tests use this; the
    /// experiment suite shares [`Orchestrator::global`]).
    #[must_use]
    pub fn new() -> Orchestrator {
        Orchestrator::default()
    }

    /// The process-wide orchestrator every experiment shares.
    ///
    /// Its cache cap comes from `BIASLAB_CACHE_CAP` at first use: a
    /// positive integer caps the in-memory record count, anything else
    /// (or the variable being unset) leaves it unbounded. The cache
    /// shard count comes from `BIASLAB_CACHE_SHARDS` the same way
    /// (default [`DEFAULT_CACHE_SHARDS`]).
    #[must_use]
    pub fn global() -> &'static Orchestrator {
        static GLOBAL: OnceLock<Orchestrator> = OnceLock::new();
        GLOBAL.get_or_init(Orchestrator::from_env)
    }

    /// A fresh orchestrator configured from the environment:
    /// `BIASLAB_CACHE_SHARDS` picks the shard count (default
    /// [`DEFAULT_CACHE_SHARDS`]), `BIASLAB_CACHE_CAP` bounds the cache.
    /// [`Orchestrator::global`] and the serve daemon both start here.
    #[must_use]
    pub fn from_env() -> Orchestrator {
        let shards = std::env::var("BIASLAB_CACHE_SHARDS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_CACHE_SHARDS);
        let orch = Orchestrator::with_cache_shards(shards);
        let cap = std::env::var("BIASLAB_CACHE_CAP")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0);
        orch.set_cache_cap(cap);
        orch
    }

    /// Caps the in-memory measurement cache at `cap` records (`None` is
    /// unbounded, the default). Shrinking below the current size evicts
    /// oldest-first immediately.
    pub fn set_cache_cap(&self, cap: Option<usize>) {
        let evicted = self.cache.set_cap(cap);
        self.note_evicted(&evicted);
    }

    /// The configured cache cap (`None` is unbounded).
    #[must_use]
    pub fn cache_cap(&self) -> Option<usize> {
        self.cache.cap()
    }

    /// How many shards the measurement cache is split into.
    #[must_use]
    pub fn cache_shards(&self) -> usize {
        self.cache.shards.len()
    }

    /// The shared harness for a benchmark, or `None` for an unknown name.
    /// One harness per benchmark means compile and link caches are shared
    /// by every experiment in the process.
    #[must_use]
    pub fn harness(&self, name: &str) -> Option<Arc<Harness>> {
        let mut reg = self.harnesses.lock();
        if let Some(h) = reg.get(name) {
            return Some(h.clone());
        }
        let h = Arc::new(Harness::new(benchmark_by_name(name)?));
        reg.insert(name.to_owned(), h.clone());
        Some(h.clone())
    }

    /// Counts (and, when tracing, emits) one cache interaction.
    fn note(&self, outcome: CacheOutcome, key: &MeasureKey) {
        match outcome {
            CacheOutcome::Hit => self.hits.add(1),
            CacheOutcome::Miss => self.misses.add(1),
            CacheOutcome::Evict => self.evictions.add(1),
        }
        if telemetry::enabled() {
            telemetry::emit_cache(outcome, key.digest(), &key.bench);
        }
    }

    /// [`Orchestrator::note`]s an eviction per dropped key.
    fn note_evicted(&self, evicted: &[MeasureKey]) {
        for key in evicted {
            self.note(CacheOutcome::Evict, key);
        }
    }

    /// Takes (or recalls) one verified measurement.
    ///
    /// Concurrent calls for the same key are single-flight: one caller
    /// (the leader) simulates, the rest wait on its result and count as
    /// cache hits — the cache never runs the same simulation twice, no
    /// matter how many threads race to request it.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`MeasureError`] — errors are cached too, so
    /// a failing configuration fails fast on re-request.
    pub fn measure(
        &self,
        harness: &Harness,
        setup: &ExperimentSetup,
        size: InputSize,
    ) -> Result<Measurement, MeasureError> {
        match self.measure_deadline(harness, setup, size, None) {
            Ok(r) => r,
            // With no deadline the request can only complete or unwind.
            Err(DeadlineExceeded) => unreachable!("deadline error without a deadline"),
        }
    }

    /// [`Orchestrator::measure`] bounded by a wall-clock deadline.
    ///
    /// The deadline is enforced at the protocol's control points — before
    /// leading a simulation, and while waiting on another leader's result
    /// (the single-flight wait becomes a timed wait) — never *inside* a
    /// simulation: the instruction-budget watchdog bounds the simulation
    /// itself, and deriving a budget from wall-clock time would poison the
    /// deterministic cache with timing-dependent results. An expired
    /// leader abandons its in-flight cell (waiters take over), an expired
    /// waiter walks away; neither burns a simulation.
    ///
    /// # Errors
    ///
    /// `Err(DeadlineExceeded)` when the deadline passed first; otherwise
    /// the inner measurement result, exactly as [`Orchestrator::measure`].
    pub fn measure_deadline(
        &self,
        harness: &Harness,
        setup: &ExperimentSetup,
        size: InputSize,
        deadline: Option<Instant>,
    ) -> Result<Result<Measurement, MeasureError>, DeadlineExceeded> {
        let key = MeasureKey::new(harness.benchmark().name(), setup, size);
        if !telemetry::enabled() {
            return self.measure_request(harness, setup, size, key, deadline).0;
        }
        let span = telemetry::Span::open("measure", &key.bench).with_key(key.digest());
        let (r, outcome) = self.measure_request(harness, setup, size, key, deadline);
        span.with_outcome(outcome).close();
        r
    }

    /// The single-flight measurement protocol behind
    /// [`Orchestrator::measure`]. Lock order is inflight → cache shard →
    /// cache meta; [`Orchestrator::sweep`] takes cache locks alone, so
    /// the order is acyclic.
    ///
    /// The protocol is a loop because a leader can die: a waiter woken on
    /// an `Abandoned` cell goes around again and — finding neither a
    /// cached record nor an in-flight cell — elects itself the new leader.
    /// A leader that panics on an injected *recoverable* fault
    /// ([`site::LEADER_PANIC`]) retries in place; any other leader panic
    /// unwinds out (its [`LeaderGuard`] abandons the cell on the way), so
    /// the panic stays visible to the panicking caller while the waiters
    /// recover. Stats count once per request whatever the number of
    /// takeover rounds.
    fn measure_request(
        &self,
        harness: &Harness,
        setup: &ExperimentSetup,
        size: InputSize,
        key: MeasureKey,
        deadline: Option<Instant>,
    ) -> (
        Result<Result<Measurement, MeasureError>, DeadlineExceeded>,
        CacheOutcome,
    ) {
        enum Role {
            Done(Result<Measurement, MeasureError>),
            Wait(Arc<InflightCell>),
            Lead(Arc<InflightCell>),
        }
        let mut noted: Option<CacheOutcome> = None;
        let mut note_once = |outcome: CacheOutcome| match noted {
            Some(first) => first,
            None => {
                noted = Some(outcome);
                self.note(outcome, &key);
                outcome
            }
        };
        loop {
            let role = {
                let mut inflight = self.inflight.lock();
                if let Some(r) = self.cache.get(&key) {
                    Role::Done(r)
                } else if let Some(cell) = inflight.get(&key) {
                    Role::Wait(cell.clone())
                } else {
                    let cell = Arc::new(InflightCell::default());
                    inflight.insert(key.clone(), cell.clone());
                    Role::Lead(cell)
                }
            };
            match role {
                Role::Done(r) => return (Ok(r), note_once(CacheOutcome::Hit)),
                Role::Wait(cell) => {
                    let outcome = note_once(CacheOutcome::Hit);
                    let mut state = lock_unpoisoned(&cell.state);
                    loop {
                        match &*state {
                            CellState::Done(r) => return (Ok((**r).clone()), outcome),
                            CellState::Abandoned => break, // take over: go around
                            CellState::Pending => match deadline {
                                None => state = wait_unpoisoned(&cell.ready, state),
                                Some(d) => {
                                    // Timed wait: walk away when the
                                    // deadline passes first; the leader's
                                    // result still lands in the cache.
                                    let now = Instant::now();
                                    if now >= d {
                                        return (Err(DeadlineExceeded), outcome);
                                    }
                                    let (g, _) =
                                        wait_timeout_unpoisoned(&cell.ready, state, d - now);
                                    state = g;
                                }
                            },
                        }
                    }
                }
                Role::Lead(cell) => {
                    let outcome = note_once(CacheOutcome::Miss);
                    let mut guard = LeaderGuard {
                        orch: self,
                        key: &key,
                        cell: &cell,
                        armed: true,
                    };
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        // Expired before simulating: don't burn the run.
                        // Returning drops the still-armed guard, which
                        // retires the cell as `Abandoned` so any waiters
                        // take over leadership instead of wedging.
                        drop(guard);
                        return (Err(DeadlineExceeded), outcome);
                    }
                    let r = loop {
                        if !faults::active() {
                            break self.simulate_one(harness, setup, size);
                        }
                        // Injected panics carry a marker payload: a
                        // recoverable one is swallowed and the leader
                        // retries in place; anything else (including the
                        // deliberately unrecoverable hard site) unwinds
                        // out through the guard so waiters take over.
                        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            faults::maybe_panic_leader();
                            self.simulate_one(harness, setup, size)
                        })) {
                            Ok(r) => break r,
                            Err(payload) => {
                                if faults::injected_panic(payload.as_ref())
                                    .is_some_and(|p| p.recoverable)
                                {
                                    faults::recovered("leader.retry");
                                    continue;
                                }
                                std::panic::resume_unwind(payload);
                            }
                        }
                    };
                    // Publish to the cache and retire the in-flight entry
                    // under the inflight lock: a new requester sees either
                    // the cached record or the in-flight cell, never a gap
                    // between them.
                    let evicted = {
                        let mut inflight = self.inflight.lock();
                        let evicted = self.cache.insert(key.clone(), r.clone());
                        inflight.remove(&key);
                        evicted
                    };
                    guard.armed = false;
                    self.note_evicted(&evicted);
                    *lock_unpoisoned(&cell.state) = CellState::Done(Box::new(r.clone()));
                    cell.ready.notify_all();
                    return (Ok(r), outcome);
                }
            }
        }
    }

    /// Runs one simulation with the watchdog and the orchestrator's
    /// simulated/busy accounting (shared by the single-flight leader and
    /// sweep workers; each call counts as one simulation).
    ///
    /// The watchdog converts a runaway simulation — the machine's
    /// instruction budget exhausting ([`RunError::Budget`]), or an
    /// injected [`site::MEASURE_RUNAWAY`] fault — into
    /// [`MeasureError::Watchdog`], retries once (the retry never
    /// re-injects, so injected runaways always recover), and on a second
    /// trip quarantines the key: the error is returned, and the caller
    /// caches it like any other, so re-requests fail fast.
    fn simulate_one(
        &self,
        harness: &Harness,
        setup: &ExperimentSetup,
        size: InputSize,
    ) -> Result<Measurement, MeasureError> {
        fn watchdogify(e: MeasureError) -> MeasureError {
            match e {
                MeasureError::Run(RunError::Budget(limit)) => MeasureError::Watchdog { limit },
                e => e,
            }
        }
        let start = Instant::now();
        let mut r = if faults::fire(site::MEASURE_RUNAWAY) {
            Err(MeasureError::Watchdog {
                limit: setup.machine.max_instructions,
            })
        } else {
            harness.measure(setup, size).map_err(watchdogify)
        };
        if matches!(r, Err(MeasureError::Watchdog { .. })) {
            self.watchdog_fired.add(1);
            self.watchdog_retries.add(1);
            r = harness.measure(setup, size).map_err(watchdogify);
            if matches!(r, Err(MeasureError::Watchdog { .. })) {
                self.watchdog_quarantined.add(1);
            } else {
                faults::recovered("watchdog.retry");
            }
        }
        self.simulated.add(1);
        self.busy_us.add(start.elapsed().as_micros() as u64);
        r
    }

    /// Measures many setups, preserving request order.
    ///
    /// Cached setups are recalled; the rest are deduplicated and distributed
    /// over a work-stealing worker pool (so duplicate requests within one
    /// sweep simulate exactly once). Results are per-setup so one failing
    /// setup does not poison a sweep.
    #[must_use]
    pub fn sweep(
        &self,
        harness: &Harness,
        setups: &[ExperimentSetup],
        size: InputSize,
    ) -> Vec<Result<Measurement, MeasureError>> {
        let sweep_start = Instant::now();
        self.sweeps.add(1);
        let traced = telemetry::enabled();
        let sweep_span = traced.then(|| telemetry::Span::open("sweep", harness.benchmark().name()));
        let bench = harness.benchmark().name();
        let keys: Vec<MeasureKey> = setups
            .iter()
            .map(|s| MeasureKey::new(bench, s, size))
            .collect();

        // Split requests into cached and to-simulate. Results are
        // collected directly (`out` / the work slots below), never
        // re-read from the cache, so a capacity bound evicting mid-sweep
        // cannot lose a requested measurement.
        let mut work: Vec<(MeasureKey, ExperimentSetup)> = Vec::new();
        let mut out: Vec<Option<Result<Measurement, MeasureError>>> =
            Vec::with_capacity(keys.len());
        // For each uncached request, `(request index, work index)`.
        let mut pending: Vec<(usize, usize)> = Vec::new();
        {
            let mut claimed: HashMap<&MeasureKey, usize> = HashMap::new();
            for (i, (key, setup)) in keys.iter().zip(setups).enumerate() {
                if let Some(r) = self.cache.get(key) {
                    self.note(CacheOutcome::Hit, key);
                    out.push(Some(r));
                } else {
                    self.note(CacheOutcome::Miss, key);
                    let wi = *claimed.entry(key).or_insert_with(|| {
                        work.push((key.clone(), setup.clone()));
                        work.len() - 1
                    });
                    pending.push((i, wi));
                    out.push(None);
                }
            }
        }

        if !work.is_empty() {
            // Pre-warm compilation serially: `Harness::compiled` serializes
            // on a lock anyway, and warming here keeps workers measuring.
            let mut warmed: Vec<OptLevel> = work.iter().map(|(k, _)| k.opt).collect();
            warmed.sort_unstable();
            warmed.dedup();
            for level in warmed {
                let _ = harness.compiled(level);
            }

            let threads = std::thread::available_parallelism()
                .map_or(4, |n| n.get())
                .min(16)
                .min(work.len());
            let slots: Vec<Mutex<Option<Result<Measurement, MeasureError>>>> =
                (0..work.len()).map(|_| Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);
            // Sweep workers are fresh threads: propagate the caller's
            // experiment scope and tag each with a 1-based worker id so
            // trace spans say which worker simulated what.
            let caller_scope = if traced {
                telemetry::scope()
            } else {
                String::new()
            };
            crossbeam::scope(|scope| {
                let work = &work;
                let slots = &slots;
                let next = &next;
                let caller_scope = &caller_scope;
                for w in 0..threads {
                    let wid = w as u64 + 1;
                    scope.spawn(move |_| {
                        if traced {
                            telemetry::set_worker(wid);
                            telemetry::set_scope(caller_scope);
                        }
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= work.len() {
                                break;
                            }
                            if faults::active() {
                                faults::delay(site::WORKER_DELAY);
                            }
                            let r = if traced {
                                let span = telemetry::Span::open("measure", &work[i].0.bench)
                                    .with_key(work[i].0.digest())
                                    .with_outcome(CacheOutcome::Miss);
                                let r = self.simulate_one(harness, &work[i].1, size);
                                span.close();
                                r
                            } else {
                                self.simulate_one(harness, &work[i].1, size)
                            };
                            *slots[i].lock() = Some(r);
                        }
                    });
                }
            })
            .expect("sweep worker panicked");

            let results: Vec<Result<Measurement, MeasureError>> = slots
                .into_iter()
                .map(|slot| slot.into_inner().expect("every index visited"))
                .collect();
            for (i, wi) in pending {
                out[i] = Some(results[wi].clone());
            }
            let mut evicted = Vec::new();
            for ((key, _), result) in work.into_iter().zip(results) {
                evicted.extend(self.cache.insert(key, result));
            }
            self.note_evicted(&evicted);
        }

        let out = out
            .into_iter()
            .map(|r| r.expect("cached or measured above"))
            .collect();
        self.sweep_wall_us
            .add(sweep_start.elapsed().as_micros() as u64);
        if let Some(span) = sweep_span {
            span.close();
        }
        out
    }

    /// A snapshot of the instrumentation counters.
    #[must_use]
    pub fn stats(&self) -> OrchestratorStats {
        OrchestratorStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            simulated: self.simulated.get(),
            loaded: self.loaded.get(),
            pruned: self.pruned.get(),
            quarantined: self.quarantined.get(),
            sweeps: self.sweeps.get(),
            evictions: self.evictions.get(),
            sweep_wall_us: self.sweep_wall_us.get(),
            busy_us: self.busy_us.get(),
            cached: self.cache.len() as u64,
        }
    }

    /// Every registry counter plus the cache level, `(name, value)` sorted
    /// by name — the snapshot trace export appends as its `metrics` record.
    #[must_use]
    pub fn metrics(&self) -> Vec<(String, u64)> {
        let mut out = self.metrics.snapshot();
        out.push(("orch.cached".to_owned(), self.cache.len() as u64));
        out.sort();
        out
    }

    /// Persists every successful cached measurement as JSON lines (see the
    /// module docs; `counters` is the array form of [`Counters`] in
    /// declaration order, and every record carries a `crc` checksum that
    /// [`Orchestrator::load`] verifies). The file is written to a sibling
    /// temp path, fsynced, and renamed into place, with the parent
    /// directory fsynced after the rename — so a crash at any point leaves
    /// either the complete old file or the complete new one, and a failed
    /// write removes its temp file instead of leaking it.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing or renaming. Callers that want
    /// retry and graceful degradation use [`Orchestrator::persist`].
    pub fn save(&self, path: &Path) -> std::io::Result<usize> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let tmp = path.with_extension("tmp");
        let write = || -> std::io::Result<usize> {
            let mut written = 0usize;
            let mut f = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
            // Deterministic file order: sort by the record line itself.
            let mut lines: Vec<String> = self.cache.record_lines();
            lines.sort_unstable();
            for line in lines {
                if faults::active() {
                    if let Some(e) = faults::io_error(site::SAVE_IO) {
                        return Err(e);
                    }
                    if faults::fire(site::SAVE_SHORT) {
                        // A torn write: half a record reaches the temp
                        // file, then the writer dies. The real results
                        // file is untouched; a reader of the torn temp
                        // content quarantines the cut line by checksum.
                        f.write_all(&line.as_bytes()[..line.len() / 2])?;
                        f.flush()?;
                        return Err(std::io::Error::other("injected fault: save.short"));
                    }
                }
                writeln!(f, "{line}")?;
                written += 1;
            }
            f.flush()?;
            f.into_inner().map_err(|e| e.into_error())?.sync_all()?;
            std::fs::rename(&tmp, path)?;
            Ok(written)
        };
        match write() {
            Ok(n) => {
                sync_parent_dir(path);
                Ok(n)
            }
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// [`Orchestrator::save`] with transient-failure handling: up to three
    /// attempts with a short backoff, then graceful degradation — one
    /// warning on stderr, the `orch.persist_degraded` counter, and
    /// in-memory-only operation from then on (later calls return
    /// immediately). Returns the number of records written, `0` when
    /// degraded. Measurements are never lost to a persistence failure:
    /// results flow to callers directly, the file is only a resume
    /// accelerator.
    pub fn persist(&self, path: &Path) -> usize {
        if self.degraded.load(Ordering::Relaxed) {
            return 0;
        }
        let mut failed = false;
        let mut last: Option<std::io::Error> = None;
        for attempt in 0..3u32 {
            if attempt > 0 {
                std::thread::sleep(Duration::from_millis(1 << (2 * (attempt - 1))));
            }
            match self.save(path) {
                Ok(n) => {
                    if failed {
                        faults::recovered("io.retry");
                    }
                    return n;
                }
                Err(e) => {
                    failed = true;
                    last = Some(e);
                }
            }
        }
        self.degraded.store(true, Ordering::Relaxed);
        self.persist_degraded.add(1);
        faults::recovered("persist.degraded");
        eprintln!(
            "warning: could not write results file {} ({}); continuing in-memory only",
            path.display(),
            last.map_or_else(|| "unknown error".to_owned(), |e| e.to_string()),
        );
        0
    }

    /// Whether [`Orchestrator::persist`] has degraded to in-memory-only
    /// operation after repeated write failures.
    #[must_use]
    pub fn persist_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Restores measurements persisted by [`Orchestrator::save`].
    ///
    /// Bad records are dropped, counted, and never fatal, in two classes:
    /// **pruned** ([`OrchestratorStats::pruned`]) — foreign record
    /// versions and benchmarks this build does not know, the ordinary
    /// staleness of a file written by an older build; **quarantined**
    /// ([`OrchestratorStats::quarantined`]) — current-version records
    /// that are torn or corrupt (truncated mid-line, checksum mismatch),
    /// the signature of a crashed writer. Either way the affected key
    /// just re-simulates. Already-cached keys are left untouched.
    /// Returns how many records were restored; a missing file restores
    /// zero. Transient read errors are retried (three attempts, short
    /// backoff) before propagating.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than the file not existing; the caller
    /// degrades to a cold start (re-simulation), never to wrong data.
    pub fn load(&self, path: &Path) -> std::io::Result<usize> {
        let mut text = None;
        let mut failed = false;
        for attempt in 0..3u32 {
            if attempt > 0 {
                std::thread::sleep(Duration::from_millis(1 << (2 * (attempt - 1))));
            }
            let read = match faults::io_error(site::LOAD_IO) {
                Some(e) => Err(e),
                None => std::fs::read_to_string(path),
            };
            match read {
                Ok(t) => {
                    if failed {
                        faults::recovered("io.retry");
                    }
                    text = Some(t);
                    break;
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
                Err(e) if attempt == 2 => return Err(e),
                Err(_) => failed = true,
            }
        }
        let text = text.expect("read, returned, or errored above");
        let mut restored = 0usize;
        let mut pruned = 0u64;
        let mut quarantined = 0u64;
        let mut evicted = Vec::new();
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            match parse_record(line) {
                RecordVerdict::Ok(key, _) if benchmark_by_name(&key.bench).is_none() => {
                    pruned += 1;
                }
                RecordVerdict::Ok(key, m) => {
                    if !self.cache.contains_key(&key) {
                        evicted.extend(self.cache.insert(key, Ok(*m)));
                        restored += 1;
                    }
                }
                RecordVerdict::Foreign => pruned += 1,
                RecordVerdict::Corrupt => quarantined += 1,
            }
        }
        self.note_evicted(&evicted);
        self.loaded.add(restored as u64);
        self.pruned.add(pruned);
        self.quarantined.add(quarantined);
        Ok(restored)
    }
}

// ---------------------------------------------------------------------------
// Persistence format (hand-rolled: the offline serde stand-in has no JSON
// backend). One record per line:
//
//   {"v":3,"bench":"hmmer","machine":123,"opt":"O2","order":"rand:7",
//    "text_offset":0,"stack_shift":0,"env":456,"size":"test",
//    "setup":"core2/O2/env=0B/order=default","checksum":789,
//    "counters":[...],"crc":101112}
//
// `counters` lists every `Counters` field in declaration order. `crc` is
// FNV-64 over everything before its own field (the line up to and
// including the closing `]` of `counters`), so a record torn or flipped
// anywhere is detected on load.

// Version 2: `machine`/`env` switched from Debug-string digests to the
// canonical named-field digests ([`machine_digest`], [`env_digest`]).
// Version-1 digests are incomparable, so v1 files prune wholesale.
// Version 3: added the per-record `crc` checksum; v2 records carry none
// to verify, so they prune wholesale rather than load unchecked.
const RECORD_VERSION: u64 = 3;

/// What [`parse_record`] concluded about one line.
enum RecordVerdict {
    /// A verified current-version record (boxed: the other verdicts are
    /// unit variants, and verdicts are consumed one line at a time).
    Ok(MeasureKey, Box<Measurement>),
    /// Not a record of this version — an older build's output (pruned).
    Foreign,
    /// Claims this version but is torn or corrupt — a crashed writer's
    /// residue (quarantined).
    Corrupt,
}

pub(crate) fn order_str(o: LinkOrder) -> String {
    match o {
        LinkOrder::Default => "default".to_owned(),
        LinkOrder::Reversed => "reversed".to_owned(),
        LinkOrder::Alphabetical => "alpha".to_owned(),
        LinkOrder::Random(seed) => format!("rand:{seed}"),
    }
}

pub(crate) fn parse_order(s: &str) -> Option<LinkOrder> {
    match s {
        "default" => Some(LinkOrder::Default),
        "reversed" => Some(LinkOrder::Reversed),
        "alpha" => Some(LinkOrder::Alphabetical),
        _ => s.strip_prefix("rand:")?.parse().ok().map(LinkOrder::Random),
    }
}

pub(crate) fn size_str(s: InputSize) -> &'static str {
    match s {
        InputSize::Test => "test",
        InputSize::Ref => "ref",
    }
}

pub(crate) fn parse_size(s: &str) -> Option<InputSize> {
    match s {
        "test" => Some(InputSize::Test),
        "ref" => Some(InputSize::Ref),
        _ => None,
    }
}

pub(crate) fn counters_to_vec(c: &Counters) -> Vec<u64> {
    vec![
        c.cycles,
        c.instructions,
        c.fetches,
        c.l1i_misses,
        c.l1d_accesses,
        c.l1d_misses,
        c.l2_misses,
        c.itlb_misses,
        c.dtlb_misses,
        c.branches,
        c.mispredicts,
        c.btb_misses,
        c.ras_mispredicts,
        c.bank_conflicts,
        c.line_splits,
        c.page_splits,
        c.loads,
        c.stores,
        c.stall_frontend,
        c.stall_memory,
        c.stall_branch,
        c.stall_compute,
    ]
}

pub(crate) fn counters_from_vec(v: &[u64]) -> Option<Counters> {
    let [cycles, instructions, fetches, l1i_misses, l1d_accesses, l1d_misses, l2_misses, itlb_misses, dtlb_misses, branches, mispredicts, btb_misses, ras_mispredicts, bank_conflicts, line_splits, page_splits, loads, stores, stall_frontend, stall_memory, stall_branch, stall_compute] =
        *v
    else {
        return None;
    };
    Some(Counters {
        cycles,
        instructions,
        fetches,
        l1i_misses,
        l1d_accesses,
        l1d_misses,
        l2_misses,
        itlb_misses,
        dtlb_misses,
        branches,
        mispredicts,
        btb_misses,
        ras_mispredicts,
        bank_conflicts,
        line_splits,
        page_splits,
        loads,
        stores,
        stall_frontend,
        stall_memory,
        stall_branch,
        stall_compute,
    })
}

fn record_line(k: &MeasureKey, m: &Measurement) -> String {
    let counters = counters_to_vec(&m.counters)
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(",");
    let mut line = format!(
        concat!(
            "{{\"v\":{},\"bench\":\"{}\",\"machine\":{},\"opt\":\"{}\",",
            "\"order\":\"{}\",\"text_offset\":{},\"stack_shift\":{},",
            "\"env\":{},\"size\":\"{}\",\"setup\":\"{}\",\"checksum\":{},",
            "\"counters\":[{}]"
        ),
        RECORD_VERSION,
        k.bench,
        k.machine,
        k.opt,
        order_str(k.link_order),
        k.text_offset,
        k.stack_shift,
        k.env,
        size_str(k.size),
        m.setup,
        m.checksum,
        counters,
    );
    let crc = fnv64(&line);
    let _ = write!(line, ",\"crc\":{crc}}}");
    line
}

fn parse_record(line: &str) -> RecordVerdict {
    // A line is "ours" if it declares the current version; from then on
    // any defect is corruption, not staleness.
    if field_u64(line, "v") != Some(RECORD_VERSION) {
        return RecordVerdict::Foreign;
    }
    let Some((body, crc)) = line
        .rsplit_once(",\"crc\":")
        .and_then(|(body, rest)| Some((body, rest.strip_suffix('}')?.parse::<u64>().ok()?)))
    else {
        return RecordVerdict::Corrupt;
    };
    if fnv64(body) != crc {
        return RecordVerdict::Corrupt;
    }
    let parsed = (|| {
        let key = MeasureKey {
            bench: field_str(line, "bench")?.to_owned(),
            machine: field_u64(line, "machine")?,
            opt: OptLevel::ALL
                .into_iter()
                .find(|l| l.to_string() == field_str(line, "opt").unwrap_or(""))?,
            link_order: parse_order(field_str(line, "order")?)?,
            text_offset: field_u64(line, "text_offset")? as u32,
            stack_shift: field_u64(line, "stack_shift")? as u32,
            env: field_u64(line, "env")?,
            size: parse_size(field_str(line, "size")?)?,
        };
        let counters: Vec<u64> = field(line, "counters")?
            .strip_prefix('[')?
            .strip_suffix(']')?
            .split(',')
            .map(|n| n.trim().parse().ok())
            .collect::<Option<_>>()?;
        let m = Measurement {
            setup: field_str(line, "setup")?.to_owned(),
            counters: counters_from_vec(&counters)?,
            checksum: field_u64(line, "checksum")?,
        };
        Some((key, m))
    })();
    match parsed {
        Some((key, m)) => RecordVerdict::Ok(key, Box::new(m)),
        None => RecordVerdict::Corrupt,
    }
}

#[cfg(test)]
mod tests {
    use biaslab_toolchain::load::Environment;
    use biaslab_uarch::MachineConfig;

    use super::*;

    fn env_setups(n: usize) -> Vec<ExperimentSetup> {
        let base = ExperimentSetup::default_on(MachineConfig::core2(), OptLevel::O2);
        (0..n)
            .map(|i| base.with_env(Environment::of_total_size(64 * i as u32 + 64)))
            .collect()
    }

    #[test]
    fn parallel_sweep_matches_serial_measurements() {
        let orch = Orchestrator::new();
        let h = orch.harness("hmmer").expect("known benchmark");
        let setups = env_setups(8);
        let swept = orch.sweep(&h, &setups, InputSize::Test);
        for (setup, got) in setups.iter().zip(&swept) {
            let serial = h
                .measure(setup, InputSize::Test)
                .expect("serial measurement");
            let got = got.as_ref().expect("swept measurement");
            assert_eq!(got.counters, serial.counters, "{}", setup.summary());
            assert_eq!(got.checksum, serial.checksum);
            assert_eq!(got.setup, serial.setup);
        }
    }

    #[test]
    fn second_request_hits_the_cache_without_resimulating() {
        let orch = Orchestrator::new();
        let h = orch.harness("milc").expect("known benchmark");
        let setups = env_setups(4);
        let first = orch.sweep(&h, &setups, InputSize::Test);
        let after_first = orch.stats();
        assert_eq!(after_first.simulated, 4);
        assert_eq!(after_first.misses, 4);

        let second = orch.sweep(&h, &setups, InputSize::Test);
        let after_second = orch.stats();
        assert_eq!(
            after_second.simulated, 4,
            "no re-simulation on a warm cache"
        );
        assert_eq!(after_second.hits, 4);
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(
                a.as_ref().expect("ok").counters,
                b.as_ref().expect("ok").counters
            );
        }
    }

    #[test]
    fn duplicate_requests_in_one_sweep_simulate_once() {
        let orch = Orchestrator::new();
        let h = orch.harness("hmmer").expect("known benchmark");
        let one = env_setups(1);
        let doubled = vec![one[0].clone(), one[0].clone(), one[0].clone()];
        let results = orch.sweep(&h, &doubled, InputSize::Test);
        assert_eq!(results.len(), 3);
        assert_eq!(orch.stats().simulated, 1);
        assert_eq!(orch.stats().misses, 3);
    }

    #[test]
    fn distinct_factors_get_distinct_keys() {
        let base = ExperimentSetup::default_on(MachineConfig::core2(), OptLevel::O2);
        let k = |s: &ExperimentSetup| MeasureKey::new("b", s, InputSize::Test);
        assert_ne!(k(&base), k(&base.with_opt(OptLevel::O3)));
        assert_ne!(k(&base), k(&base.with_env(Environment::of_total_size(128))));
        assert_ne!(k(&base), k(&base.with_link_order(LinkOrder::Random(1))));
        assert_ne!(
            k(&base),
            MeasureKey::new(
                "b",
                &ExperimentSetup::default_on(MachineConfig::o3cpu(), OptLevel::O2),
                InputSize::Test
            )
        );
        assert_ne!(k(&base), MeasureKey::new("b", &base, InputSize::Ref));
        assert_eq!(k(&base), k(&base.clone()));
    }

    #[test]
    fn records_roundtrip_through_the_results_file() {
        let orch = Orchestrator::new();
        let h = orch.harness("sphinx3").expect("known benchmark");
        let mut setups = env_setups(3);
        setups[1] = setups[1].with_link_order(LinkOrder::Random(7));
        let originals = orch.sweep(&h, &setups, InputSize::Test);

        let dir = std::env::temp_dir().join(format!("biaslab-orch-{}", std::process::id()));
        let path = dir.join("measurements.jsonl");
        let written = orch.save(&path).expect("save");
        assert_eq!(written, 3);

        let fresh = Orchestrator::new();
        assert_eq!(fresh.load(&path).expect("load"), 3);
        let restored = fresh.sweep(&h, &setups, InputSize::Test);
        let stats = fresh.stats();
        assert_eq!(
            stats.simulated, 0,
            "everything served from the restored cache"
        );
        assert_eq!(stats.loaded, 3);
        for (a, b) in originals.iter().zip(&restored) {
            let (a, b) = (a.as_ref().expect("ok"), b.as_ref().expect("ok"));
            assert_eq!(a.counters, b.counters);
            assert_eq!(a.checksum, b.checksum);
            assert_eq!(a.setup, b.setup);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A digest change silently invalidates every persisted results file,
    /// so it must only happen on purpose (with a [`RECORD_VERSION`] bump),
    /// never through formatting or derive churn. These constants were
    /// computed once from the canonical renderings and pinned.
    #[test]
    fn setup_digests_are_pinned() {
        assert_eq!(
            machine_digest(&MachineConfig::pentium4()),
            0x530c_d327_6251_e59a
        );
        assert_eq!(
            machine_digest(&MachineConfig::core2()),
            0x06a7_5a75_25a3_109c
        );
        assert_eq!(
            machine_digest(&MachineConfig::o3cpu()),
            0xc243_5423_dfcd_2663
        );
        assert_eq!(
            env_digest(&Environment::of_total_size(64)),
            0xdd88_1ced_02c5_0561
        );
        assert_eq!(
            env_digest(&Environment::of_total_size(612)),
            0x3535_f8db_a763_3e64
        );
    }

    #[test]
    fn digests_respond_to_every_named_field() {
        let base = MachineConfig::core2();
        let d = machine_digest(&base);
        let mut m = base.clone();
        m.overlap += 0.125;
        assert_ne!(machine_digest(&m), d, "overlap must be digested");
        let mut m = base.clone();
        m.l1d.ways *= 2;
        assert_ne!(
            machine_digest(&m),
            d,
            "nested cache fields must be digested"
        );
        let mut m = base;
        m.l1d_next_line_prefetch = !m.l1d_next_line_prefetch;
        assert_ne!(machine_digest(&m), d, "ablation toggles must be digested");
        assert_ne!(
            env_digest(&Environment::of_total_size(64)),
            env_digest(&Environment::of_total_size(65)),
        );
        assert_eq!(
            env_digest(&Environment::of_total_size(612)),
            env_digest(&Environment::of_total_size(612)),
        );
    }

    #[test]
    fn loading_prunes_stale_records() {
        let orch = Orchestrator::new();
        let h = orch.harness("hmmer").expect("known benchmark");
        let _ = orch.sweep(&h, &env_setups(2), InputSize::Test);

        let dir = std::env::temp_dir().join(format!("biaslab-prune-{}", std::process::id()));
        let path = dir.join("measurements.jsonl");
        assert_eq!(orch.save(&path).expect("save"), 2);

        // Damage the file every way a crashed or foreign writer would: a
        // previous record version (stale), a benchmark this build doesn't
        // know (stale — note the bench rename invalidates the crc too, so
        // re-stamp it), a truncated line (torn), and a flipped counter
        // under a stale crc (corrupt). Blank lines are not records at all.
        let mut text = std::fs::read_to_string(&path).expect("read back");
        let valid = text.lines().next().expect("has records").to_owned();
        text.push_str(&valid.replace("\"v\":3", "\"v\":1"));
        text.push('\n');
        let renamed = valid.replace("\"bench\":\"hmmer\"", "\"bench\":\"nonesuch\"");
        let body = renamed.rsplit_once(",\"crc\":").expect("has crc").0;
        text.push_str(&format!("{body},\"crc\":{}}}", crate::jsonl::fnv64(body)));
        text.push('\n');
        text.push_str(&valid[..valid.len() / 2]);
        text.push('\n');
        text.push_str(&valid.replacen("\"counters\":[", "\"counters\":[9", 1));
        text.push_str("\n\n");
        std::fs::write(&path, text).expect("rewrite");

        let fresh = Orchestrator::new();
        assert_eq!(fresh.load(&path).expect("load"), 2);
        let stats = fresh.stats();
        assert_eq!(stats.loaded, 2);
        assert_eq!(stats.pruned, 2, "v1 + unknown bench");
        assert_eq!(stats.quarantined, 2, "truncated + crc mismatch");
        assert!(format!("{stats}").contains("2 pruned, 2 quarantined"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loading_a_missing_file_restores_nothing() {
        let orch = Orchestrator::new();
        let n = orch
            .load(Path::new("/nonexistent/biaslab/results.jsonl"))
            .expect("ok");
        assert_eq!(n, 0);
        assert_eq!(orch.stats().loaded, 0);
    }

    #[test]
    fn corrupt_lines_are_skipped() {
        // Foreign or non-record lines are stale, not corrupt…
        assert!(matches!(
            parse_record("{\"v\":99,\"bench\":\"x\"}"),
            RecordVerdict::Foreign
        ));
        assert!(matches!(
            parse_record("not json at all"),
            RecordVerdict::Foreign
        ));
        assert!(matches!(parse_record(""), RecordVerdict::Foreign));
        // …while a current-version line without a verifiable crc is torn.
        assert!(matches!(
            parse_record("{\"v\":3,\"bench\":\"x\"}"),
            RecordVerdict::Corrupt
        ));
        assert!(matches!(
            parse_record("{\"v\":3,\"bench\":\"x\",\"crc\":12}"),
            RecordVerdict::Corrupt
        ));
    }

    #[test]
    fn record_lines_parse_back_exactly() {
        let key = MeasureKey {
            bench: "hmmer".to_owned(),
            machine: 0xdead_beef,
            opt: OptLevel::O3,
            link_order: LinkOrder::Random(42),
            text_offset: 64,
            stack_shift: 128,
            env: u64::MAX,
            size: InputSize::Ref,
        };
        let m = Measurement {
            setup: "core2/O3/env=612B/order=rand(42)".to_owned(),
            counters: Counters {
                cycles: 123,
                instructions: 45,
                ..Counters::default()
            },
            checksum: u64::MAX - 1,
        };
        let line = record_line(&key, &m);
        let RecordVerdict::Ok(k2, m2) = parse_record(&line) else {
            panic!("roundtrip failed for {line}");
        };
        assert_eq!(key, k2);
        assert_eq!(m.counters, m2.counters);
        assert_eq!(m.checksum, m2.checksum);
        assert_eq!(m.setup, m2.setup);
        // Any single-byte damage to the body is caught by the crc.
        let flipped = line.replacen("\"counters\":[", "\"counters\":[1", 1);
        assert!(matches!(parse_record(&flipped), RecordVerdict::Corrupt));
        assert!(matches!(
            parse_record(&line[..line.len() - 10]),
            RecordVerdict::Corrupt
        ));
    }

    #[test]
    fn cache_cap_evicts_oldest_first() {
        let orch = Orchestrator::new();
        orch.set_cache_cap(Some(2));
        assert_eq!(orch.cache_cap(), Some(2));
        let h = orch.harness("hmmer").expect("known benchmark");
        let setups = env_setups(3);
        for s in &setups {
            let _ = orch.measure(&h, s, InputSize::Test);
        }
        let stats = orch.stats();
        assert_eq!(stats.cached, 2);
        assert_eq!(stats.evictions, 1);
        // The newest record is retained…
        let _ = orch.measure(&h, &setups[2], InputSize::Test);
        assert_eq!(orch.stats().simulated, 3);
        // …the oldest was evicted, so it re-simulates.
        let _ = orch.measure(&h, &setups[0], InputSize::Test);
        assert_eq!(orch.stats().simulated, 4);
    }

    #[test]
    fn capped_sweep_still_returns_every_measurement() {
        let capped = Orchestrator::new();
        capped.set_cache_cap(Some(2));
        let unbounded = Orchestrator::new();
        let setups = env_setups(6);
        let a = capped.sweep(
            &capped.harness("hmmer").expect("known"),
            &setups,
            InputSize::Test,
        );
        let b = unbounded.sweep(
            &unbounded.harness("hmmer").expect("known"),
            &setups,
            InputSize::Test,
        );
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                x.as_ref().expect("ok").counters,
                y.as_ref().expect("ok").counters
            );
        }
        let stats = capped.stats();
        assert_eq!(stats.cached, 2, "cap respected");
        assert_eq!(stats.evictions, 4);
        assert_eq!(unbounded.stats().evictions, 0);
    }

    #[test]
    fn shrinking_the_cap_evicts_immediately() {
        let orch = Orchestrator::new();
        let h = orch.harness("milc").expect("known benchmark");
        let setups = env_setups(4);
        let _ = orch.sweep(&h, &setups, InputSize::Test);
        assert_eq!(orch.stats().cached, 4);
        orch.set_cache_cap(Some(1));
        let stats = orch.stats();
        assert_eq!(stats.cached, 1);
        assert_eq!(stats.evictions, 3);
        // Back to unbounded: nothing further evicts.
        orch.set_cache_cap(None);
        let _ = orch.sweep(&h, &setups, InputSize::Test);
        assert_eq!(orch.stats().evictions, 3);
    }

    /// The sharded split is a concurrency knob, not a policy change: on a
    /// deterministic workload the cap, the eviction count and the
    /// oldest-first victim choice are identical at every shard count
    /// (including the degenerate single-shard cache, which is the old
    /// unsharded semantics verbatim).
    #[test]
    fn sharding_preserves_global_cap_semantics() {
        let setups = env_setups(6);
        let mut evictions = Vec::new();
        for shards in [1usize, 2, 8] {
            let orch = Orchestrator::with_cache_shards(shards);
            assert_eq!(orch.cache_shards(), shards);
            orch.set_cache_cap(Some(2));
            let h = orch.harness("hmmer").expect("known benchmark");
            for s in &setups {
                let _ = orch.measure(&h, s, InputSize::Test);
            }
            let stats = orch.stats();
            assert_eq!(stats.cached, 2, "cap enforced across {shards} shard(s)");
            evictions.push(stats.evictions);
            // The newest record is retained at any shard count…
            let _ = orch.measure(&h, &setups[5], InputSize::Test);
            assert_eq!(orch.stats().simulated, 6, "{shards} shard(s)");
            // …and the globally-oldest was the victim, so it re-simulates.
            let _ = orch.measure(&h, &setups[0], InputSize::Test);
            assert_eq!(orch.stats().simulated, 7, "{shards} shard(s)");
        }
        assert_eq!(
            evictions,
            vec![4, 4, 4],
            "per-shard split must not change eviction counts"
        );
    }

    #[test]
    fn global_is_a_singleton_and_shares_harnesses() {
        let a = Orchestrator::global();
        let b = Orchestrator::global();
        assert!(std::ptr::eq(a, b));
        let h1 = a.harness("hmmer").expect("known");
        let h2 = b.harness("hmmer").expect("known");
        assert!(Arc::ptr_eq(&h1, &h2));
        assert!(a.harness("no-such-benchmark").is_none());
    }
}
