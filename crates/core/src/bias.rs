//! Bias detection: quantifying how much an "innocuous" setup factor moves
//! a measured effect, and whether it can flip the experiment's conclusion.
//!
//! The paper's operational definition: measure the effect (here, the
//! speedup of one optimization level over another) under many values of a
//! setup factor that *should not matter* (environment size, link order).
//! The factor introduces **measurement bias** when the effect's spread
//! across factor values is comparable to the effect itself, and a
//! **conclusion flip** when the spread straddles 1.0 — the same experiment
//! says "optimization helps" in one setup and "optimization hurts" in
//! another.

use serde::{Deserialize, Serialize};

use crate::harness::{Harness, MeasureError, Measurement};
use crate::setup::ExperimentSetup;
use crate::stats::{Summary, ViolinSummary};
use biaslab_toolchain::OptLevel;
use biaslab_workloads::InputSize;

/// The speedup of `test` over `base` given their cycle counts: `> 1` means
/// `test` is faster.
///
/// # Examples
///
/// ```
/// use biaslab_core::bias::speedup;
///
/// assert_eq!(speedup(1200, 1000), 1.2);
/// ```
#[must_use]
pub fn speedup(base_cycles: u64, test_cycles: u64) -> f64 {
    base_cycles as f64 / test_cycles as f64
}

/// One (setup, speedup) observation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedupObservation {
    /// Human-readable setup description.
    pub setup: String,
    /// Cycles at the base level.
    pub base_cycles: u64,
    /// Cycles at the test level.
    pub test_cycles: u64,
    /// `base_cycles / test_cycles`.
    pub speedup: f64,
}

/// The bias a factor introduced into a speedup measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BiasReport {
    /// What was varied (e.g. `"environment size"`).
    pub factor: String,
    /// The individual observations, in sweep order.
    pub observations: Vec<SpeedupObservation>,
    /// Distribution summary of the speedups.
    pub violin: ViolinSummary,
    /// `max/min − 1`: the relative spread the factor alone induces.
    pub bias_magnitude: f64,
    /// Whether the sweep contains speedups on both sides of 1.0 — i.e.
    /// the factor can flip the experiment's conclusion.
    pub conclusion_flips: bool,
}

impl BiasReport {
    /// Builds a report from a factor name and observations.
    ///
    /// # Panics
    ///
    /// Panics if `observations` is empty.
    #[must_use]
    pub fn from_observations(
        factor: impl Into<String>,
        observations: Vec<SpeedupObservation>,
    ) -> BiasReport {
        assert!(!observations.is_empty(), "bias report needs observations");
        let speedups: Vec<f64> = observations.iter().map(|o| o.speedup).collect();
        let violin = ViolinSummary::of(&speedups);
        BiasReport {
            factor: factor.into(),
            bias_magnitude: violin.max() / violin.min() - 1.0,
            conclusion_flips: violin.straddles(1.0),
            observations,
            violin,
        }
    }

    /// The speedups, in sweep order.
    #[must_use]
    pub fn speedups(&self) -> Vec<f64> {
        self.observations.iter().map(|o| o.speedup).collect()
    }

    /// Descriptive summary of the speedups.
    #[must_use]
    pub fn summary(&self) -> Summary {
        Summary::of(&self.speedups())
    }
}

/// Sweeps a factor: measures `base_opt` and `test_opt` under each setup
/// (which should differ only in the factor under study) and reports the
/// induced bias.
///
/// # Errors
///
/// Propagates the first [`MeasureError`] encountered.
pub fn sweep_factor(
    harness: &Harness,
    factor: impl Into<String>,
    setups: &[ExperimentSetup],
    base_opt: OptLevel,
    test_opt: OptLevel,
    size: InputSize,
) -> Result<BiasReport, MeasureError> {
    let mut all: Vec<ExperimentSetup> = Vec::with_capacity(setups.len() * 2);
    for s in setups {
        all.push(s.with_opt(base_opt));
        all.push(s.with_opt(test_opt));
    }
    let results = crate::orchestrator::Orchestrator::global().sweep(harness, &all, size);
    let mut observations = Vec::with_capacity(setups.len());
    let mut iter = results.into_iter();
    for s in setups {
        let base: Measurement = iter.next().expect("paired result")?;
        let test: Measurement = iter.next().expect("paired result")?;
        observations.push(SpeedupObservation {
            setup: s.summary(),
            base_cycles: base.cycles(),
            test_cycles: test.cycles(),
            speedup: speedup(base.cycles(), test.cycles()),
        });
    }
    Ok(BiasReport::from_observations(factor, observations))
}

#[cfg(test)]
mod tests {
    use biaslab_toolchain::load::Environment;
    use biaslab_uarch::MachineConfig;
    use biaslab_workloads::benchmark_by_name;

    use super::*;
    use crate::setup::LinkOrder;

    fn obs(speedups: &[f64]) -> Vec<SpeedupObservation> {
        speedups
            .iter()
            .map(|&s| SpeedupObservation {
                setup: "t".into(),
                base_cycles: 1000,
                test_cycles: (1000.0 / s) as u64,
                speedup: s,
            })
            .collect()
    }

    #[test]
    fn detects_flips_and_magnitude() {
        let r = BiasReport::from_observations("env", obs(&[0.98, 1.00, 1.05]));
        assert!(r.conclusion_flips);
        assert!((r.bias_magnitude - (1.05 / 0.98 - 1.0)).abs() < 1e-12);

        let r = BiasReport::from_observations("env", obs(&[1.01, 1.02, 1.05]));
        assert!(!r.conclusion_flips);
    }

    #[test]
    fn speedup_orientation() {
        assert!(speedup(2000, 1000) > 1.0, "faster test = speedup above 1");
        assert!(speedup(1000, 2000) < 1.0);
    }

    #[test]
    fn sweep_factor_end_to_end_env() {
        let h = Harness::new(benchmark_by_name("hmmer").expect("known"));
        let base = ExperimentSetup::default_on(MachineConfig::o3cpu(), OptLevel::O2);
        let setups: Vec<_> = (0..4)
            .map(|i| base.with_env(Environment::of_total_size(64 + 256 * i)))
            .collect();
        let report = sweep_factor(
            &h,
            "environment size",
            &setups,
            OptLevel::O2,
            OptLevel::O3,
            InputSize::Test,
        )
        .unwrap();
        assert_eq!(report.observations.len(), 4);
        assert!(report.bias_magnitude >= 0.0);
        for o in &report.observations {
            assert!(
                o.speedup > 0.5 && o.speedup < 2.0,
                "plausible speedup, got {}",
                o.speedup
            );
        }
    }

    #[test]
    fn sweep_factor_end_to_end_link_order() {
        let h = Harness::new(benchmark_by_name("milc").expect("known"));
        let base = ExperimentSetup::default_on(MachineConfig::core2(), OptLevel::O2);
        let setups: Vec<_> = (0..3)
            .map(|i| base.with_link_order(LinkOrder::Random(i)))
            .collect();
        let report = sweep_factor(
            &h,
            "link order",
            &setups,
            OptLevel::O2,
            OptLevel::O3,
            InputSize::Test,
        )
        .unwrap();
        assert_eq!(report.speedups().len(), 3);
    }
}
