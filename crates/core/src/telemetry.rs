//! Structured tracing and metrics for the measure path — the harness's
//! own "experimental setup disclosure".
//!
//! The paper's thesis is that unreported properties of a measurement
//! procedure are where wrong conclusions hide. By PR 3 this harness had
//! grown a process-wide measurement cache, work-stealing sweeps and a
//! parallel experiment driver whose behaviour — which requests hit the
//! cache, which worker simulated what, where the wall time went — was
//! itself unreported. This module makes that procedure first-class:
//!
//! - **Spans** for the compile → link → load → run → stat phases of every
//!   measurement (emitted by [`crate::harness::Harness`]), for each
//!   measurement request (emitted by [`crate::Orchestrator`], carrying
//!   the worker id, the [`crate::MeasureKey`] digest and the cache
//!   hit/miss outcome), and for each experiment block (emitted by the
//!   `repro` driver).
//! - **Cache events**: one record per cache hit, miss and eviction, so a
//!   trace accounts for every count in
//!   [`crate::orchestrator::OrchestratorStats`] exactly.
//! - **A metrics registry** ([`MetricsRegistry`]): named monotonic
//!   counters. The orchestrator's instrumentation is built on it (its
//!   `OrchestratorStats` is a typed snapshot of registry counters), and
//!   process-wide components (the `repro` driver) register their own
//!   counters in the [`metrics`] global.
//! - **Profiles**: a traced run can attach the simulator's exact
//!   per-function cycle attribution ([`biaslab_uarch::profile::Profile`])
//!   to its run span (see [`profiles_enabled`]).
//! - **JSONL export** ([`export`]) under `results/traces/` with a stable,
//!   versioned schema ([`TRACE_VERSION`], [`schema`]) that
//!   `tests/telemetry.rs` pins as a golden snapshot. `biaslab trace
//!   <file>` renders a report from it (see [`crate::trace_report`]).
//!
//! # Zero cost when off
//!
//! Telemetry is **off by default** and gated on one relaxed atomic load
//! ([`enabled`]). Every instrumented call site checks it first and takes
//! the pre-telemetry code path when it is false: no span structs are
//! built, no clocks read, no buffers touched. Nothing is emitted from
//! inside the simulator's run loop — instrumentation sits at the
//! harness/orchestrator layer, once per measurement, never per
//! instruction — so the PR-2 invariant stands: with telemetry off the
//! hot loop compiles to the existing code paths, and with it on every
//! `Counters` value is still bit-identical (enforced by
//! `tests/telemetry.rs`).

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::Mutex;

use crate::jsonl::{field, field_str, field_u64};

/// Version stamp written on every trace line. Bump it whenever a field is
/// added, removed or reinterpreted; readers skip lines from foreign
/// versions. (v2: added the `fault` record kind for injected-fault and
/// recovery events from [`crate::faults`].)
pub const TRACE_VERSION: u64 = 2;

/// Field names of a `trace_start` line, in write order.
pub const START_FIELDS: &[&str] = &["v", "ev", "label", "clock_us"];
/// Field names of a `span` line, in write order.
pub const SPAN_FIELDS: &[&str] = &[
    "v", "ev", "id", "parent", "name", "scope", "bench", "worker", "key", "outcome", "start_us",
    "dur_us",
];
/// Field names of a `cache` line, in write order.
pub const CACHE_FIELDS: &[&str] = &[
    "v", "ev", "outcome", "key", "bench", "scope", "worker", "t_us",
];
/// Field names of a `profile` line, in write order.
pub const PROFILE_FIELDS: &[&str] = &["v", "ev", "span", "bench", "scope", "entries"];
/// Field names of a `fault` line, in write order.
pub const FAULT_FIELDS: &[&str] = &["v", "ev", "kind", "site", "scope", "worker", "t_us"];
/// Field names of a `metrics` line, in write order.
pub const METRICS_FIELDS: &[&str] = &["v", "ev", "counters"];

/// Span names the writer emits (phases plus the grouping spans).
pub const SPAN_NAMES: &[&str] = &[
    "measure",
    "compile",
    "link",
    "load",
    "run",
    "stat",
    "sweep",
    "experiment",
];

// ---------------------------------------------------------------------------
// Events

/// How a measurement request interacted with the orchestrator cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the cache (including waiting on an in-flight leader).
    Hit,
    /// Not in the cache; a simulation was (or is being) run.
    Miss,
    /// A cached record was dropped by the capacity policy.
    Evict,
}

impl CacheOutcome {
    /// The stable name written to traces.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Evict => "evict",
        }
    }

    fn parse(s: &str) -> Option<CacheOutcome> {
        match s {
            "hit" => Some(CacheOutcome::Hit),
            "miss" => Some(CacheOutcome::Miss),
            "evict" => Some(CacheOutcome::Evict),
            _ => None,
        }
    }
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Unique id within the trace (1-based; ids are allocation-ordered).
    pub id: u64,
    /// Enclosing span id, `0` for a root span.
    pub parent: u64,
    /// Span name (one of [`SPAN_NAMES`]).
    pub name: &'static str,
    /// Experiment scope (e.g. `"fig3"`), empty outside an experiment.
    pub scope: String,
    /// Benchmark or experiment label the span is about.
    pub bench: String,
    /// Worker id (`0` = the requesting thread itself).
    pub worker: u64,
    /// [`crate::MeasureKey`] digest, `0` when not a measurement request.
    pub key: u64,
    /// Cache outcome for measurement-request spans.
    pub outcome: Option<CacheOutcome>,
    /// Start, microseconds since the trace clock origin.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

/// One cache interaction (hit, miss or eviction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEvent {
    /// What happened.
    pub outcome: CacheOutcome,
    /// [`crate::MeasureKey`] digest of the record.
    pub key: u64,
    /// Benchmark the record measures.
    pub bench: String,
    /// Experiment scope at the time of the event.
    pub scope: String,
    /// Worker id observing the event.
    pub worker: u64,
    /// Event time, microseconds since the trace clock origin.
    pub t_us: u64,
}

/// A per-function cycle attribution attached to a run span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileEvent {
    /// The `run` span this profile belongs to.
    pub span: u64,
    /// Benchmark profiled.
    pub bench: String,
    /// Experiment scope at the time of the run.
    pub scope: String,
    /// `(function, cycles, instructions)`, hottest first.
    pub entries: Vec<(String, u64, u64)>,
}

/// Whether a `fault` record marks an injection or a recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A failpoint fired (see [`crate::faults::fire`]); `site` names the
    /// failpoint site.
    Injected,
    /// A recovery mechanism handled a fault (see
    /// [`crate::faults::recovered`]); `site` names the mechanism.
    Recovered,
}

impl FaultKind {
    /// The stable name written to traces.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::Injected => "injected",
            FaultKind::Recovered => "recovered",
        }
    }

    fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "injected" => Some(FaultKind::Injected),
            "recovered" => Some(FaultKind::Recovered),
            _ => None,
        }
    }
}

/// One fault-layer event: an injected fault or a recovery from one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// Injection or recovery.
    pub kind: FaultKind,
    /// Failpoint site (injections) or recovery mechanism (recoveries).
    pub site: String,
    /// Experiment scope at the time of the event.
    pub scope: String,
    /// Worker id observing the event.
    pub worker: u64,
    /// Event time, microseconds since the trace clock origin.
    pub t_us: u64,
}

/// Any buffered trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A completed span.
    Span(SpanEvent),
    /// A cache interaction.
    Cache(CacheEvent),
    /// An attached profile.
    Profile(ProfileEvent),
    /// An injected fault or a recovery.
    Fault(FaultEvent),
}

// ---------------------------------------------------------------------------
// Global collector state

struct Sink {
    origin: Instant,
    events: Mutex<Vec<TraceEvent>>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static PROFILES: AtomicBool = AtomicBool::new(false);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

fn sink() -> &'static Sink {
    static SINK: OnceLock<Sink> = OnceLock::new();
    SINK.get_or_init(|| Sink {
        origin: Instant::now(),
        events: Mutex::new(Vec::new()),
    })
}

thread_local! {
    static WORKER: Cell<u64> = const { Cell::new(0) };
    static CURRENT: Cell<u64> = const { Cell::new(0) };
    static SCOPE: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Whether tracing is on. One relaxed atomic load — every instrumented
/// call site checks this before doing any telemetry work at all.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns tracing on (events start buffering in the process-wide sink).
pub fn enable() {
    let _ = sink(); // pin the clock origin before the first event
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns tracing off. Buffered events stay buffered until [`drain`]ed or
/// [`export`]ed.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
    PROFILES.store(false, Ordering::Relaxed);
}

/// Whether traced runs should also capture per-function cycle
/// attribution. Off by default even when tracing: profiled runs pay the
/// attribution bookkeeping (counters stay bit-identical either way).
#[inline]
#[must_use]
pub fn profiles_enabled() -> bool {
    PROFILES.load(Ordering::Relaxed)
}

/// Turns on profile capture for traced runs (implies nothing unless
/// tracing is enabled too).
pub fn enable_profiles() {
    PROFILES.store(true, Ordering::Relaxed);
}

/// Tags this thread's subsequent events with a worker id (`0` = untagged;
/// sweep and driver workers use 1-based ids).
pub fn set_worker(id: u64) {
    WORKER.with(|w| w.set(id));
}

/// This thread's worker id.
#[must_use]
pub fn worker() -> u64 {
    WORKER.with(Cell::get)
}

/// Tags this thread's subsequent events with an experiment scope (the
/// `repro` driver sets the experiment id around each block).
pub fn set_scope(scope: &str) {
    SCOPE.with(|s| {
        let mut s = s.borrow_mut();
        s.clear();
        s.push_str(scope);
    });
}

/// Clears this thread's experiment scope.
pub fn clear_scope() {
    SCOPE.with(|s| s.borrow_mut().clear());
}

/// This thread's experiment scope (empty when unset).
#[must_use]
pub fn scope() -> String {
    SCOPE.with(|s| s.borrow().clone())
}

/// The innermost open span id on this thread (`0` when none). The
/// harness uses this to attach phase spans under the orchestrator's
/// measurement-request span instead of opening a duplicate parent.
#[must_use]
pub fn current_span() -> u64 {
    CURRENT.with(Cell::get)
}

/// Microseconds since the trace clock origin.
#[must_use]
pub fn now_us() -> u64 {
    sink().origin.elapsed().as_micros() as u64
}

// ---------------------------------------------------------------------------
// Emission

/// An open span. Callers construct one only when [`enabled`] (the
/// constructor itself is cheap but not free: it reads the clock and a
/// thread-local). Spans close explicitly — [`Span::close`] emits the
/// event — so a span can never record a partially-initialized duration.
#[derive(Debug)]
pub struct Span {
    id: u64,
    prev: u64,
    name: &'static str,
    bench: String,
    key: u64,
    outcome: Option<CacheOutcome>,
    start_us: u64,
}

impl Span {
    /// Opens a span and makes it this thread's current parent.
    #[must_use]
    pub fn open(name: &'static str, bench: &str) -> Span {
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let prev = CURRENT.with(|c| c.replace(id));
        Span {
            id,
            prev,
            name,
            bench: bench.to_owned(),
            key: 0,
            outcome: None,
            start_us: now_us(),
        }
    }

    /// Attaches a [`crate::MeasureKey`] digest.
    #[must_use]
    pub fn with_key(mut self, key: u64) -> Span {
        self.key = key;
        self
    }

    /// Attaches a cache outcome.
    #[must_use]
    pub fn with_outcome(mut self, outcome: CacheOutcome) -> Span {
        self.outcome = Some(outcome);
        self
    }

    /// The span's id (for attaching profiles).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Closes the span: restores the previous parent and emits the event.
    pub fn close(self) {
        CURRENT.with(|c| c.set(self.prev));
        let end = now_us();
        let event = SpanEvent {
            id: self.id,
            parent: self.prev,
            name: self.name,
            scope: scope(),
            bench: self.bench,
            worker: worker(),
            key: self.key,
            outcome: self.outcome,
            start_us: self.start_us,
            dur_us: end.saturating_sub(self.start_us),
        };
        sink().events.lock().push(TraceEvent::Span(event));
    }
}

/// Records one cache interaction. Callers check [`enabled`] first.
pub fn emit_cache(outcome: CacheOutcome, key: u64, bench: &str) {
    let event = CacheEvent {
        outcome,
        key,
        bench: bench.to_owned(),
        scope: scope(),
        worker: worker(),
        t_us: now_us(),
    };
    sink().events.lock().push(TraceEvent::Cache(event));
}

/// Attaches a per-function profile to a span. Callers check [`enabled`]
/// (and gate the profiled run itself on [`profiles_enabled`]).
pub fn emit_profile(span: u64, bench: &str, profile: &biaslab_uarch::profile::Profile) {
    let event = ProfileEvent {
        span,
        bench: bench.to_owned(),
        scope: scope(),
        entries: profile
            .entries
            .iter()
            .map(|e| (e.name.clone(), e.cycles, e.instructions))
            .collect(),
    };
    sink().events.lock().push(TraceEvent::Profile(event));
}

/// Records one fault-layer event. Callers check [`enabled`] first (the
/// fault layer does; see [`crate::faults::fire`]).
pub fn emit_fault(kind: FaultKind, site: &str) {
    let event = FaultEvent {
        kind,
        site: site.to_owned(),
        scope: scope(),
        worker: worker(),
        t_us: now_us(),
    };
    sink().events.lock().push(TraceEvent::Fault(event));
}

/// Takes every buffered event, leaving the buffer empty. Tests use this
/// directly; `repro --trace` goes through [`export`].
#[must_use]
pub fn drain() -> Vec<TraceEvent> {
    std::mem::take(&mut *sink().events.lock())
}

// ---------------------------------------------------------------------------
// Metrics registry

/// A named monotonic counter handle. Cloning shares the underlying
/// atomic, so hot paths keep a handle instead of re-looking-up by name.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `delta`.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raises the counter to `value` if larger — a monotonic high-water
    /// mark, for quantities (like a cache's live-block population) where
    /// summing across runs would be meaningless.
    pub fn record_max(&self, value: u64) {
        self.0.fetch_max(value, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A registry of named monotonic counters.
///
/// [`crate::Orchestrator`] owns one (its `OrchestratorStats` is a typed
/// snapshot of it), and [`metrics`] is the process-wide instance other
/// components (the `repro` driver) register into. Snapshots are sorted
/// by name, so exported `metrics` records are deterministic.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Counter>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    #[must_use]
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created at zero on first use. Callers on
    /// hot paths should hold the returned handle.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        let mut counters = self.counters.lock();
        if let Some(c) = counters.get(name) {
            return c.clone();
        }
        let c = Counter::default();
        counters.insert(name.to_owned(), c.clone());
        c
    }

    /// Every counter's `(name, value)`, sorted by name.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }
}

/// The process-wide metrics registry (counters outside the
/// orchestrator: the `repro` driver's experiment/panic counts live
/// here). Exported traces end with a `metrics` record merging this with
/// whatever snapshot the exporter passes.
#[must_use]
pub fn metrics() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

// ---------------------------------------------------------------------------
// JSONL trace format

fn outcome_str(o: Option<CacheOutcome>) -> &'static str {
    o.map_or("", CacheOutcome::as_str)
}

impl TraceEvent {
    /// The event's JSONL line (no trailing newline). Every line carries
    /// every field of its kind — absent values write as `0` / `""` — so
    /// the schema is fixed per kind, which is what the golden snapshot
    /// test pins.
    #[must_use]
    pub fn to_line(&self) -> String {
        match self {
            TraceEvent::Span(s) => format!(
                concat!(
                    "{{\"v\":{},\"ev\":\"span\",\"id\":{},\"parent\":{},\"name\":\"{}\",",
                    "\"scope\":\"{}\",\"bench\":\"{}\",\"worker\":{},\"key\":{},",
                    "\"outcome\":\"{}\",\"start_us\":{},\"dur_us\":{}}}"
                ),
                TRACE_VERSION,
                s.id,
                s.parent,
                s.name,
                s.scope,
                s.bench,
                s.worker,
                s.key,
                outcome_str(s.outcome),
                s.start_us,
                s.dur_us,
            ),
            TraceEvent::Cache(c) => format!(
                concat!(
                    "{{\"v\":{},\"ev\":\"cache\",\"outcome\":\"{}\",\"key\":{},",
                    "\"bench\":\"{}\",\"scope\":\"{}\",\"worker\":{},\"t_us\":{}}}"
                ),
                TRACE_VERSION,
                c.outcome.as_str(),
                c.key,
                c.bench,
                c.scope,
                c.worker,
                c.t_us,
            ),
            TraceEvent::Profile(p) => {
                let entries = p
                    .entries
                    .iter()
                    .map(|(name, cycles, insts)| format!("[\"{name}\",{cycles},{insts}]"))
                    .collect::<Vec<_>>()
                    .join(",");
                format!(
                    concat!(
                        "{{\"v\":{},\"ev\":\"profile\",\"span\":{},\"bench\":\"{}\",",
                        "\"scope\":\"{}\",\"entries\":[{}]}}"
                    ),
                    TRACE_VERSION, p.span, p.bench, p.scope, entries,
                )
            }
            TraceEvent::Fault(f) => format!(
                concat!(
                    "{{\"v\":{},\"ev\":\"fault\",\"kind\":\"{}\",\"site\":\"{}\",",
                    "\"scope\":\"{}\",\"worker\":{},\"t_us\":{}}}"
                ),
                TRACE_VERSION,
                f.kind.as_str(),
                f.site,
                f.scope,
                f.worker,
                f.t_us,
            ),
        }
    }
}

/// A parsed trace line.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceLine {
    /// The header record.
    Start {
        /// Free-form session label (e.g. `"repro all --effort quick"`).
        label: String,
        /// Trace duration at export time, microseconds.
        clock_us: u64,
    },
    /// An event record.
    Event(TraceEvent),
    /// The trailing metrics snapshot.
    Metrics(Vec<(String, u64)>),
}

/// Parses one trace line. Returns `None` for blank lines, foreign
/// versions and anything else this writer did not produce.
#[must_use]
pub fn parse_line(line: &str) -> Option<TraceLine> {
    if line.trim().is_empty() || field_u64(line, "v")? != TRACE_VERSION {
        return None;
    }
    match field_str(line, "ev")? {
        "trace_start" => Some(TraceLine::Start {
            label: field_str(line, "label")?.to_owned(),
            clock_us: field_u64(line, "clock_us")?,
        }),
        "span" => {
            let name = *SPAN_NAMES
                .iter()
                .find(|n| **n == field_str(line, "name").unwrap_or(""))?;
            Some(TraceLine::Event(TraceEvent::Span(SpanEvent {
                id: field_u64(line, "id")?,
                parent: field_u64(line, "parent")?,
                name,
                scope: field_str(line, "scope")?.to_owned(),
                bench: field_str(line, "bench")?.to_owned(),
                worker: field_u64(line, "worker")?,
                key: field_u64(line, "key")?,
                outcome: match field_str(line, "outcome")? {
                    "" => None,
                    s => Some(CacheOutcome::parse(s)?),
                },
                start_us: field_u64(line, "start_us")?,
                dur_us: field_u64(line, "dur_us")?,
            })))
        }
        "cache" => Some(TraceLine::Event(TraceEvent::Cache(CacheEvent {
            outcome: CacheOutcome::parse(field_str(line, "outcome")?)?,
            key: field_u64(line, "key")?,
            bench: field_str(line, "bench")?.to_owned(),
            scope: field_str(line, "scope")?.to_owned(),
            worker: field_u64(line, "worker")?,
            t_us: field_u64(line, "t_us")?,
        }))),
        "profile" => {
            let raw = field(line, "entries")?;
            let inner = raw.strip_prefix('[')?.strip_suffix(']')?;
            let mut entries = Vec::new();
            if !inner.is_empty() {
                for part in inner.split("],[") {
                    let part = part.trim_start_matches('[').trim_end_matches(']');
                    let mut bits = part.splitn(3, ',');
                    let name = bits.next()?.strip_prefix('"')?.strip_suffix('"')?;
                    let cycles = bits.next()?.parse().ok()?;
                    let insts = bits.next()?.parse().ok()?;
                    entries.push((name.to_owned(), cycles, insts));
                }
            }
            Some(TraceLine::Event(TraceEvent::Profile(ProfileEvent {
                span: field_u64(line, "span")?,
                bench: field_str(line, "bench")?.to_owned(),
                scope: field_str(line, "scope")?.to_owned(),
                entries,
            })))
        }
        "fault" => Some(TraceLine::Event(TraceEvent::Fault(FaultEvent {
            kind: FaultKind::parse(field_str(line, "kind")?)?,
            site: field_str(line, "site")?.to_owned(),
            scope: field_str(line, "scope")?.to_owned(),
            worker: field_u64(line, "worker")?,
            t_us: field_u64(line, "t_us")?,
        }))),
        "metrics" => {
            let raw = field(line, "counters")?;
            let inner = raw.strip_prefix('{')?.strip_suffix('}')?;
            let mut counters = Vec::new();
            if !inner.is_empty() {
                for part in inner.split(',') {
                    let (name, value) = part.split_once(':')?;
                    let name = name.strip_prefix('"')?.strip_suffix('"')?;
                    counters.push((name.to_owned(), value.parse().ok()?));
                }
            }
            Some(TraceLine::Metrics(counters))
        }
        _ => None,
    }
}

/// Checks that a line is schema-valid: parseable, and carrying exactly
/// the fields its kind declares (in declaration order).
///
/// # Errors
///
/// Returns a description of the first deviation.
pub fn validate_line(line: &str) -> Result<(), String> {
    let parsed = parse_line(line).ok_or_else(|| format!("unparsable line: {line}"))?;
    let expected: &[&str] = match parsed {
        TraceLine::Start { .. } => START_FIELDS,
        TraceLine::Event(TraceEvent::Span(_)) => SPAN_FIELDS,
        TraceLine::Event(TraceEvent::Cache(_)) => CACHE_FIELDS,
        TraceLine::Event(TraceEvent::Profile(_)) => PROFILE_FIELDS,
        TraceLine::Event(TraceEvent::Fault(_)) => FAULT_FIELDS,
        TraceLine::Metrics(_) => METRICS_FIELDS,
    };
    let seen = top_level_keys(line).ok_or_else(|| format!("malformed field structure: {line}"))?;
    if seen != expected {
        return Err(format!(
            "fields {seen:?} do not match schema {expected:?}: {line}"
        ));
    }
    Ok(())
}

/// The top-level field names of one record line, in order. Walks the
/// object structurally — string values are skipped to their closing
/// quote, array/object values bracket-depth-matched — so nested keys
/// (the metrics counter object) and string values never masquerade as
/// fields. Exact for lines this writer produces (values contain no
/// escaped quotes); returns `None` on anything structurally foreign.
fn top_level_keys(line: &str) -> Option<Vec<&str>> {
    let inner = line.trim().strip_prefix('{')?.strip_suffix('}')?;
    let b = inner.as_bytes();
    let mut keys = Vec::new();
    let mut i = 0usize;
    loop {
        if *b.get(i)? != b'"' {
            return None;
        }
        let start = i + 1;
        let end = start + inner[start..].find('"')?;
        keys.push(&inner[start..end]);
        i = end + 1;
        if *b.get(i)? != b':' {
            return None;
        }
        i += 1;
        match b.get(i)? {
            b'"' => {
                let vstart = i + 1;
                i = vstart + inner[vstart..].find('"')? + 1;
            }
            b'[' | b'{' => {
                let mut depth = 0usize;
                loop {
                    match b.get(i)? {
                        b'[' | b'{' => depth += 1,
                        b']' | b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                i += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            _ => {
                while i < b.len() && b[i] != b',' {
                    i += 1;
                }
            }
        }
        match b.get(i) {
            None => break,
            Some(b',') => i += 1,
            _ => return None,
        }
    }
    Some(keys)
}

/// The trace schema as a stable, human-readable description — the golden
/// snapshot `tests/golden/trace_schema.txt` pins exactly this string, so
/// any field rename/add/remove fails the snapshot until
/// [`TRACE_VERSION`] is bumped and the golden re-blessed.
#[must_use]
pub fn schema() -> String {
    let mut out = format!("TRACE_VERSION={TRACE_VERSION}\n");
    for (kind, fields) in [
        ("trace_start", START_FIELDS),
        ("span", SPAN_FIELDS),
        ("cache", CACHE_FIELDS),
        ("profile", PROFILE_FIELDS),
        ("fault", FAULT_FIELDS),
        ("metrics", METRICS_FIELDS),
    ] {
        out.push_str(kind);
        out.push(':');
        for f in fields {
            out.push(' ');
            out.push_str(f);
        }
        out.push('\n');
    }
    out.push_str("span.name:");
    for n in SPAN_NAMES {
        out.push(' ');
        out.push_str(n);
    }
    out.push('\n');
    out.push_str("cache.outcome: hit miss evict\n");
    out.push_str("fault.kind: injected recovered\n");
    out
}

/// Drains the buffered events and writes the complete trace file:
/// a `trace_start` header, every event, and a final `metrics` record
/// merging the [`metrics`] global with `extra_metrics` (the exporter
/// passes the orchestrator's snapshot). The file is written to a sibling
/// temp path, fsynced, and renamed into place (the temp file is removed
/// if any step fails, and the parent directory is fsynced after the
/// rename, so a crash leaves either the old file or the new one — never
/// a torn or orphaned temp). Returns the number of event lines.
///
/// # Errors
///
/// Propagates I/O errors from writing or renaming.
pub fn export(path: &Path, label: &str, extra_metrics: &[(String, u64)]) -> std::io::Result<usize> {
    let events = drain();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let tmp = path.with_extension("tmp");
    let write = || -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
        writeln!(
            f,
            "{{\"v\":{TRACE_VERSION},\"ev\":\"trace_start\",\"label\":\"{label}\",\"clock_us\":{}}}",
            now_us()
        )?;
        for e in &events {
            writeln!(f, "{}", e.to_line())?;
        }
        let mut merged: BTreeMap<String, u64> = metrics().snapshot().into_iter().collect();
        merged.extend(extra_metrics.iter().cloned());
        let counters = merged
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect::<Vec<_>>()
            .join(",");
        writeln!(
            f,
            "{{\"v\":{TRACE_VERSION},\"ev\":\"metrics\",\"counters\":{{{counters}}}}}"
        )?;
        f.flush()?;
        f.into_inner().map_err(|e| e.into_error())?.sync_all()?;
        std::fs::rename(&tmp, path)
    };
    if let Err(e) = write() {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    crate::jsonl::sync_parent_dir(path);
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;
    use proptest::sample::select;

    use super::*;

    #[test]
    fn registry_counters_accumulate_and_snapshot_sorted() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("z.late");
        let b = reg.counter("a.early");
        a.add(3);
        b.add(1);
        reg.counter("z.late").add(4); // same underlying counter
        assert_eq!(
            reg.snapshot(),
            vec![("a.early".to_owned(), 1), ("z.late".to_owned(), 7)]
        );
    }

    #[test]
    fn span_nesting_restores_parent() {
        // Pure thread-local bookkeeping: no need to enable the collector.
        let outer = Span::open("measure", "b");
        let outer_id = outer.id();
        assert_eq!(current_span(), outer_id);
        let inner = Span::open("run", "b");
        assert_eq!(current_span(), inner.id());
        inner.close();
        assert_eq!(current_span(), outer_id);
        outer.close();
        assert_eq!(current_span(), 0);
        let _ = drain();
    }

    #[test]
    fn lines_roundtrip_by_hand() {
        let span = TraceEvent::Span(SpanEvent {
            id: 7,
            parent: 2,
            name: "run",
            scope: "fig3".into(),
            bench: "perlbench".into(),
            worker: 3,
            key: 0xdead,
            outcome: Some(CacheOutcome::Miss),
            start_us: 10,
            dur_us: 99,
        });
        assert_eq!(
            parse_line(&span.to_line()),
            Some(TraceLine::Event(span.clone()))
        );
        validate_line(&span.to_line()).expect("schema-valid");

        let profile = TraceEvent::Profile(ProfileEvent {
            span: 7,
            bench: "hmmer".into(),
            scope: String::new(),
            entries: vec![("main".into(), 100, 10), ("kernel".into(), 50, 5)],
        });
        assert_eq!(
            parse_line(&profile.to_line()),
            Some(TraceLine::Event(profile.clone()))
        );
        validate_line(&profile.to_line()).expect("schema-valid");

        let fault = TraceEvent::Fault(FaultEvent {
            kind: FaultKind::Injected,
            site: "save.io".into(),
            scope: "fig3".into(),
            worker: 2,
            t_us: 17,
        });
        assert_eq!(
            parse_line(&fault.to_line()),
            Some(TraceLine::Event(fault.clone()))
        );
        validate_line(&fault.to_line()).expect("schema-valid");
    }

    #[test]
    fn foreign_lines_do_not_parse() {
        assert_eq!(parse_line(""), None);
        assert_eq!(parse_line("not json"), None);
        assert_eq!(parse_line("{\"v\":99,\"ev\":\"span\"}"), None);
        assert_eq!(parse_line("{\"v\":1,\"ev\":\"mystery\"}"), None);
        assert!(validate_line("{\"v\":1,\"ev\":\"mystery\"}").is_err());
    }

    #[test]
    fn schema_lists_every_kind() {
        let s = schema();
        for kind in [
            "trace_start:",
            "span:",
            "cache:",
            "profile:",
            "fault:",
            "metrics:",
        ] {
            assert!(s.contains(kind), "schema missing {kind}");
        }
        assert!(s.starts_with(&format!("TRACE_VERSION={TRACE_VERSION}\n")));
    }

    proptest! {
        #[test]
        fn span_lines_roundtrip(
            id in 1u64..1_000_000,
            parent in 0u64..1_000_000,
            name in select(SPAN_NAMES.to_vec()),
            scope in "[a-z0-9-]{0,8}",
            bench in "[a-z0-9_]{1,10}",
            worker in 0u64..64,
            key in 0u64..=u64::MAX,
            outcome in select(vec![
                None,
                Some(CacheOutcome::Hit),
                Some(CacheOutcome::Miss),
                Some(CacheOutcome::Evict),
            ]),
            start in 0u64..1_000_000_000,
            dur in 0u64..1_000_000_000,
        ) {
            let e = TraceEvent::Span(SpanEvent {
                id, parent, name, scope, bench, worker, key, outcome,
                start_us: start, dur_us: dur,
            });
            prop_assert_eq!(parse_line(&e.to_line()), Some(TraceLine::Event(e.clone())));
            prop_assert!(validate_line(&e.to_line()).is_ok());
        }

        #[test]
        fn cache_lines_roundtrip(
            outcome in select(vec![CacheOutcome::Hit, CacheOutcome::Miss, CacheOutcome::Evict]),
            key in 0u64..=u64::MAX,
            bench in "[a-z0-9_]{1,10}",
            scope in "[a-z0-9-]{0,8}",
            worker in 0u64..64,
            t in 0u64..1_000_000_000,
        ) {
            let e = TraceEvent::Cache(CacheEvent {
                outcome, key, bench, scope, worker, t_us: t,
            });
            prop_assert_eq!(parse_line(&e.to_line()), Some(TraceLine::Event(e.clone())));
            prop_assert!(validate_line(&e.to_line()).is_ok());
        }

        #[test]
        fn fault_lines_roundtrip(
            kind in select(vec![FaultKind::Injected, FaultKind::Recovered]),
            site in "[a-z][a-z.]{0,14}",
            scope in "[a-z0-9-]{0,8}",
            worker in 0u64..64,
            t in 0u64..1_000_000_000,
        ) {
            let e = TraceEvent::Fault(FaultEvent {
                kind, site, scope, worker, t_us: t,
            });
            prop_assert_eq!(parse_line(&e.to_line()), Some(TraceLine::Event(e.clone())));
            prop_assert!(validate_line(&e.to_line()).is_ok());
        }

        #[test]
        fn profile_lines_roundtrip(
            span in 0u64..1_000_000,
            bench in "[a-z0-9_]{1,10}",
            entries in proptest::collection::vec(
                ("[a-z_][a-z0-9_]{0,12}", 0u64..1_000_000, 0u64..1_000_000),
                0..6,
            ),
        ) {
            let e = TraceEvent::Profile(ProfileEvent {
                span, bench, scope: String::new(),
                entries,
            });
            prop_assert_eq!(parse_line(&e.to_line()), Some(TraceLine::Event(e.clone())));
            prop_assert!(validate_line(&e.to_line()).is_ok());
        }
    }
}
