//! Measurement-as-a-service: the `biaslab serve` daemon, its JSONL wire
//! protocol, the one-shot client, and the `loadgen` load driver.
//!
//! The serving layer is a thin, heavily validated shell around the
//! single-flight [`Orchestrator`]: a request is parsed off the socket,
//! admitted into a bounded queue (or shed with an explicit backpressure
//! response — never a hang), executed by a worker-pool thread against the
//! shared orchestrator, and answered with the exact bytes the in-process
//! path would have produced. That byte-identity is the contract the
//! differential test battery pins.
//!
//! Wire format: one JSON object per line, `PROTO_VERSION` in every line.
//! Requests carry `"ev":"req"`; responses are `"resp"` (terminal),
//! `"item"` (one sweep element), or `"stats"`. Every response line is
//! sealed with a trailing `"crc"` field — the FNV-1a hash of the body up
//! to (not including) `,"crc":` — so a client can detect torn writes
//! without trusting framing alone. String values never contain quotes,
//! brackets or braces, which keeps the `jsonl` field scanner exact.
//!
//! Failure model: the socket-boundary `serve.*` fault sites (accept
//! failure, short write, mid-response disconnect, slow client) leave a
//! client observing at worst a typed error or a torn / truncated line; it
//! reconnects with seeded jittered backoff and retries the whole exchange,
//! and the orchestrator's caches make the retry cheap and the response
//! identical. Inside the daemon a supervision layer holds the same line:
//! every pool job runs under `catch_unwind`, a panicked worker answers its
//! client with a typed `panic` error and is respawned under a capped,
//! seeded-jitter restart budget (`serve.worker.{panic,respawn}`, surfaced
//! as the `health` field of `stats`); requests may carry a `deadline_ms`
//! enforced at every control point (admission wait, single-flight wait)
//! as a typed `deadline` response; SIGTERM / `shutdown {"mode":"drain"}`
//! finishes in-flight work before stopping; and sweeps write a crc-sealed
//! journal so a daemon killed mid-sweep resumes instead of re-simulating.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread;
use std::time::{Duration, Instant};

use biaslab_toolchain::layout::STACK_MAX;
use biaslab_toolchain::load::Environment;
use biaslab_toolchain::OptLevel;
use biaslab_uarch::MachineConfig;
use biaslab_workloads::InputSize;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::faults::{self, site};
use crate::harness::{MeasureError, Measurement};
use crate::jsonl::{field, field_str, field_u64, fnv64, sync_parent_dir};
use crate::orchestrator::{
    counters_to_vec, order_str, parse_order, parse_size, size_str, DeadlineExceeded, Orchestrator,
};
use crate::setup::{ExperimentSetup, LinkOrder};
use crate::sync::{lock_unpoisoned, wait_unpoisoned};
use crate::telemetry;

/// Wire protocol version; every line carries it as `"v"`.
pub const PROTO_VERSION: u64 = 1;

/// Smallest non-empty environment `Environment::of_total_size` accepts.
const MIN_ENV_BYTES: u64 = 23;

/// Largest environment the loader can actually place (`STACK_MAX / 2`,
/// stack shift included). Rejected at parse time: anything larger would
/// allocate a fill string of that size per request only to fail the load,
/// and a value past `u32::MAX` would otherwise truncate into the panicking
/// `< 23` range of `Environment::of_total_size`.
const MAX_ENV_BYTES: u64 = (STACK_MAX / 2) as u64;

/// `true` when `bytes` is an environment size a request may carry:
/// `0` (keep the default) or within the loader's representable range.
fn env_in_range(bytes: u64) -> bool {
    bytes == 0 || (MIN_ENV_BYTES..=MAX_ENV_BYTES).contains(&bytes)
}

/// Top-level fields of a control request (`ping`, `stats`).
pub const REQ_CONTROL_FIELDS: &[&str] = &["v", "ev", "id", "op"];
/// Top-level fields of a `shutdown` request: control fields plus the
/// optional `mode` (`now`, the default, or `drain`).
pub const REQ_SHUTDOWN_FIELDS: &[&str] = &["v", "ev", "id", "op", "mode"];
/// Top-level fields of a `measure` request, in canonical order.
/// `deadline_ms` is optional; absent means no deadline.
pub const REQ_MEASURE_FIELDS: &[&str] = &[
    "v",
    "ev",
    "id",
    "op",
    "bench",
    "machine",
    "opt",
    "order",
    "text_offset",
    "stack_shift",
    "env",
    "size",
    "budget",
    "deadline_ms",
];
/// Top-level fields of a `sweep` request: measure fields plus `envs`.
pub const REQ_SWEEP_FIELDS: &[&str] = &[
    "v",
    "ev",
    "id",
    "op",
    "bench",
    "machine",
    "opt",
    "order",
    "text_offset",
    "stack_shift",
    "env",
    "size",
    "budget",
    "deadline_ms",
    "envs",
];
/// Top-level fields of a terminal response line.
pub const RESP_FIELDS: &[&str] = &[
    "v", "ev", "id", "status", "code", "error", "setup", "checksum", "counters", "items", "crc",
];
/// Top-level fields of one sweep-element line.
pub const ITEM_FIELDS: &[&str] = &[
    "v", "ev", "id", "seq", "status", "code", "error", "setup", "checksum", "counters", "crc",
];
/// Top-level fields of a stats response line. `health` is the daemon's
/// supervision state: `ok`, `degraded` (fewer live workers than
/// configured) or `draining`.
pub const STATS_FIELDS: &[&str] = &["v", "ev", "id", "health", "counters", "crc"];

/// Request operations the daemon understands.
pub const OPS: &[&str] = &["ping", "stats", "shutdown", "measure", "sweep"];

// ---------------------------------------------------------------------------
// Protocol: requests
// ---------------------------------------------------------------------------

/// Everything needed to rebuild an [`ExperimentSetup`] on the server side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeasureSpec {
    /// Benchmark name (validated server-side against the suite).
    pub bench: String,
    /// Machine configuration name (`core2`, `pentium4`, `o3cpu`).
    pub machine: String,
    /// Optimization level the toolchain compiles at.
    pub opt: OptLevel,
    /// Link order applied to the benchmark's objects.
    pub order: LinkOrder,
    /// Byte offset the text segment is slid by.
    pub text_offset: u32,
    /// Byte shift applied to the initial stack pointer.
    pub stack_shift: u32,
    /// Environment size in bytes; `0` means the empty environment.
    pub env: u64,
    /// Input size the benchmark runs with.
    pub size: InputSize,
    /// Instruction-budget override; `0` keeps the machine default. A tiny
    /// budget is the sanctioned way to provoke a watchdog error remotely.
    pub budget: u64,
}

impl MeasureSpec {
    /// Resolves the spec into a concrete setup, or `None` for an unknown
    /// machine name or an out-of-range `env` (parse validates both, so
    /// this is defensive only — never a truncating cast or a panic).
    #[must_use]
    pub fn setup(&self) -> Option<ExperimentSetup> {
        let mut machine = MachineConfig::all()
            .into_iter()
            .find(|m| m.name == self.machine)?;
        if self.budget > 0 {
            machine.max_instructions = self.budget;
        }
        if !env_in_range(self.env) {
            return None;
        }
        let mut setup = ExperimentSetup::default_on(machine, self.opt);
        setup.link_order = self.order;
        setup.text_offset = self.text_offset;
        setup.stack_shift = self.stack_shift;
        if self.env != 0 {
            setup.env = Environment::of_total_size(u32::try_from(self.env).ok()?);
        }
        Some(setup)
    }
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; answered inline with a bare `ok`.
    Ping {
        /// Client-chosen correlation id echoed in the response.
        id: u64,
    },
    /// Snapshot of orchestrator + serve counters.
    Stats {
        /// Client-chosen correlation id echoed in the response.
        id: u64,
    },
    /// Acknowledge, then stop the daemon — immediately (`mode:now`, the
    /// default) or after finishing in-flight work (`mode:drain`).
    Shutdown {
        /// Client-chosen correlation id echoed in the response.
        id: u64,
        /// `true` for a graceful drain: stop accepting, finish admitted
        /// work up to the daemon's drain timeout, then stop.
        drain: bool,
    },
    /// One measurement under one concrete setup.
    Measure {
        /// Client-chosen correlation id echoed in the response.
        id: u64,
        /// The setup to measure.
        spec: MeasureSpec,
        /// Wall-clock deadline in milliseconds from admission; `0` means
        /// no deadline. An expired request gets a typed `deadline`
        /// response instead of burning a simulation.
        deadline_ms: u64,
    },
    /// A sweep of the spec's setup across an environment-size grid.
    Sweep {
        /// Client-chosen correlation id echoed in every line.
        id: u64,
        /// The base setup swept.
        spec: MeasureSpec,
        /// Environment sizes in bytes; `0` keeps the base environment.
        envs: Vec<u64>,
        /// Wall-clock deadline in milliseconds from admission; `0` means
        /// no deadline. Checked between items; completed items are kept.
        deadline_ms: u64,
    },
}

impl Request {
    /// The client-chosen correlation id carried by every request kind.
    #[must_use]
    pub fn id(&self) -> u64 {
        match self {
            Request::Ping { id }
            | Request::Stats { id }
            | Request::Shutdown { id, .. }
            | Request::Measure { id, .. }
            | Request::Sweep { id, .. } => *id,
        }
    }
}

/// Why a request line was rejected. Variants are ordered by check priority:
/// emptiness, framing, version, envelope, identity, operation, unknown
/// fields, then
/// per-field value checks in canonical field order — so a line with
/// several problems is always rejected for the same one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The line was empty or whitespace.
    Empty,
    /// The line was not a braced one-line object (truncated or garbage).
    BadFrame,
    /// `v` was missing or not [`PROTO_VERSION`].
    BadVersion(String),
    /// `ev` was missing or not `req`.
    NotARequest(String),
    /// A required field was absent.
    MissingField(&'static str),
    /// `op` named no known operation.
    UnknownOp(String),
    /// A top-level key outside the op's allow-list (first in line order).
    UnknownField(String),
    /// A field was present but unparseable or out of range.
    BadValue(&'static str, String),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Empty => write!(f, "empty request line"),
            ProtoError::BadFrame => write!(f, "request line is not a braced object"),
            ProtoError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version `{v}` (want {PROTO_VERSION})"
                )
            }
            ProtoError::NotARequest(ev) => write!(f, "expected ev=req, got `{ev}`"),
            ProtoError::MissingField(k) => write!(f, "missing field `{k}`"),
            ProtoError::UnknownOp(op) => write!(f, "unknown op `{op}`"),
            ProtoError::UnknownField(k) => write!(f, "unknown field `{k}`"),
            ProtoError::BadValue(k, v) => write!(f, "bad value for `{k}`: `{v}`"),
        }
    }
}

/// Scans the top-level keys of a one-line JSON object, in line order.
/// Depth-aware so nested objects/arrays contribute no keys; panic-free on
/// arbitrary input.
#[must_use]
pub fn top_level_keys(line: &str) -> Vec<&str> {
    let mut keys = Vec::new();
    let bytes = line.as_bytes();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'{' | b'[' => depth += 1,
            b'}' | b']' => depth = depth.saturating_sub(1),
            b'"' if depth == 1 => {
                let start = i + 1;
                let Some(rel) = line.get(start..).and_then(|rest| rest.find('"')) else {
                    break;
                };
                let end = start + rel;
                // A key is a quoted string immediately followed by a colon.
                if bytes.get(end + 1) == Some(&b':') {
                    keys.push(&line[start..end]);
                }
                i = end;
            }
            _ => {}
        }
        i += 1;
    }
    keys
}

/// Parses one request line. Never panics; the error for a given malformed
/// line is deterministic (see [`ProtoError`] ordering).
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    let line = line.trim();
    if line.is_empty() {
        return Err(ProtoError::Empty);
    }
    if !line.starts_with('{') || !line.ends_with('}') {
        return Err(ProtoError::BadFrame);
    }
    if field_u64(line, "v") != Some(PROTO_VERSION) {
        return Err(ProtoError::BadVersion(
            field(line, "v").unwrap_or("").to_owned(),
        ));
    }
    match field_str(line, "ev") {
        Some("req") => {}
        other => return Err(ProtoError::NotARequest(other.unwrap_or("").to_owned())),
    }
    let id = field_u64(line, "id").ok_or(ProtoError::MissingField("id"))?;
    let op = field_str(line, "op").ok_or(ProtoError::MissingField("op"))?;
    let allowed: &[&str] = match op {
        "ping" | "stats" => REQ_CONTROL_FIELDS,
        "shutdown" => REQ_SHUTDOWN_FIELDS,
        "measure" => REQ_MEASURE_FIELDS,
        "sweep" => REQ_SWEEP_FIELDS,
        other => return Err(ProtoError::UnknownOp(other.to_owned())),
    };
    for key in top_level_keys(line) {
        if !allowed.contains(&key) {
            return Err(ProtoError::UnknownField(key.to_owned()));
        }
    }
    match op {
        "ping" => Ok(Request::Ping { id }),
        "stats" => Ok(Request::Stats { id }),
        "shutdown" => {
            let drain = match field_str(line, "mode") {
                None | Some("now") => false,
                Some("drain") => true,
                Some(other) => return Err(ProtoError::BadValue("mode", other.to_owned())),
            };
            Ok(Request::Shutdown { id, drain })
        }
        "measure" => {
            let spec = parse_spec(line)?;
            let deadline_ms = opt_u64(line, "deadline_ms")?;
            Ok(Request::Measure {
                id,
                spec,
                deadline_ms,
            })
        }
        _ => {
            let spec = parse_spec(line)?;
            let deadline_ms = opt_u64(line, "deadline_ms")?;
            let envs = parse_envs(line)?;
            Ok(Request::Sweep {
                id,
                spec,
                envs,
                deadline_ms,
            })
        }
    }
}

/// An optional numeric field: absent parses as `0`.
fn opt_u64(line: &str, key: &'static str) -> Result<u64, ProtoError> {
    match field(line, key) {
        None => Ok(0),
        Some(raw) => raw
            .parse()
            .map_err(|_| ProtoError::BadValue(key, raw.to_owned())),
    }
}

fn need<'a>(line: &'a str, key: &'static str) -> Result<&'a str, ProtoError> {
    field_str(line, key).ok_or(ProtoError::MissingField(key))
}

fn need_u64(line: &str, key: &'static str) -> Result<u64, ProtoError> {
    match field(line, key) {
        None => Err(ProtoError::MissingField(key)),
        Some(raw) => raw
            .parse()
            .map_err(|_| ProtoError::BadValue(key, raw.to_owned())),
    }
}

fn need_u32(line: &str, key: &'static str) -> Result<u32, ProtoError> {
    match field(line, key) {
        None => Err(ProtoError::MissingField(key)),
        Some(raw) => raw
            .parse()
            .map_err(|_| ProtoError::BadValue(key, raw.to_owned())),
    }
}

fn parse_spec(line: &str) -> Result<MeasureSpec, ProtoError> {
    let bench = need(line, "bench")?.to_owned();
    let machine = need(line, "machine")?.to_owned();
    if !MachineConfig::all().iter().any(|m| m.name == machine) {
        return Err(ProtoError::BadValue("machine", machine));
    }
    let opt_raw = need(line, "opt")?;
    let opt = OptLevel::ALL
        .into_iter()
        .find(|l| l.name() == opt_raw)
        .ok_or_else(|| ProtoError::BadValue("opt", opt_raw.to_owned()))?;
    let order_raw = need(line, "order")?;
    let order = parse_order(order_raw)
        .ok_or_else(|| ProtoError::BadValue("order", order_raw.to_owned()))?;
    let text_offset = need_u32(line, "text_offset")?;
    let stack_shift = need_u32(line, "stack_shift")?;
    let env = need_u64(line, "env")?;
    if !env_in_range(env) {
        return Err(ProtoError::BadValue("env", env.to_string()));
    }
    let size_raw = need(line, "size")?;
    let size =
        parse_size(size_raw).ok_or_else(|| ProtoError::BadValue("size", size_raw.to_owned()))?;
    let budget = need_u64(line, "budget")?;
    Ok(MeasureSpec {
        bench,
        machine,
        opt,
        order,
        text_offset,
        stack_shift,
        env,
        size,
        budget,
    })
}

fn parse_envs(line: &str) -> Result<Vec<u64>, ProtoError> {
    let raw = field(line, "envs").ok_or(ProtoError::MissingField("envs"))?;
    let inner = raw
        .strip_prefix('[')
        .and_then(|r| r.strip_suffix(']'))
        .ok_or_else(|| ProtoError::BadValue("envs", raw.to_owned()))?;
    let mut envs = Vec::new();
    if !inner.is_empty() {
        for part in inner.split(',') {
            let bytes: u64 = part
                .parse()
                .map_err(|_| ProtoError::BadValue("envs", part.to_owned()))?;
            if !env_in_range(bytes) {
                return Err(ProtoError::BadValue("envs", part.to_owned()));
            }
            envs.push(bytes);
        }
    }
    Ok(envs)
}

/// Encodes a control request (`ping`, `stats`, or an immediate
/// `shutdown`).
#[must_use]
pub fn encode_control(id: u64, op: &str) -> String {
    format!("{{\"v\":{PROTO_VERSION},\"ev\":\"req\",\"id\":{id},\"op\":\"{op}\"}}")
}

/// Encodes a `shutdown` request; `drain` selects the graceful mode that
/// finishes in-flight work before stopping.
#[must_use]
pub fn encode_shutdown(id: u64, drain: bool) -> String {
    if drain {
        format!(
            "{{\"v\":{PROTO_VERSION},\"ev\":\"req\",\"id\":{id},\"op\":\"shutdown\",\
             \"mode\":\"drain\"}}"
        )
    } else {
        encode_control(id, "shutdown")
    }
}

fn spec_fields(spec: &MeasureSpec) -> String {
    format!(
        "\"bench\":\"{}\",\"machine\":\"{}\",\"opt\":\"{}\",\"order\":\"{}\",\
         \"text_offset\":{},\"stack_shift\":{},\"env\":{},\"size\":\"{}\",\"budget\":{}",
        spec.bench,
        spec.machine,
        spec.opt.name(),
        order_str(spec.order),
        spec.text_offset,
        spec.stack_shift,
        spec.env,
        size_str(spec.size),
        spec.budget,
    )
}

/// The optional `,"deadline_ms":N` suffix; empty when there is none.
fn deadline_field(deadline_ms: u64) -> String {
    if deadline_ms == 0 {
        String::new()
    } else {
        format!(",\"deadline_ms\":{deadline_ms}")
    }
}

/// Encodes a `measure` request with no deadline.
#[must_use]
pub fn encode_measure(id: u64, spec: &MeasureSpec) -> String {
    encode_measure_deadline(id, spec, 0)
}

/// Encodes a `measure` request carrying a wall-clock deadline in
/// milliseconds (`0` omits the field: no deadline).
#[must_use]
pub fn encode_measure_deadline(id: u64, spec: &MeasureSpec, deadline_ms: u64) -> String {
    format!(
        "{{\"v\":{PROTO_VERSION},\"ev\":\"req\",\"id\":{id},\"op\":\"measure\",{}{}}}",
        spec_fields(spec),
        deadline_field(deadline_ms)
    )
}

/// Encodes a `sweep` request over the given environment sizes.
#[must_use]
pub fn encode_sweep(id: u64, spec: &MeasureSpec, envs: &[u64]) -> String {
    encode_sweep_deadline(id, spec, envs, 0)
}

/// Encodes a `sweep` request with a deadline (`0` omits the field).
#[must_use]
pub fn encode_sweep_deadline(
    id: u64,
    spec: &MeasureSpec,
    envs: &[u64],
    deadline_ms: u64,
) -> String {
    let envs: Vec<String> = envs.iter().map(u64::to_string).collect();
    format!(
        "{{\"v\":{PROTO_VERSION},\"ev\":\"req\",\"id\":{id},\"op\":\"sweep\",{}{},\"envs\":[{}]}}",
        spec_fields(spec),
        deadline_field(deadline_ms),
        envs.join(",")
    )
}

/// Round-trips a request back into its wire line.
#[must_use]
pub fn encode_request(req: &Request) -> String {
    match req {
        Request::Ping { id } => encode_control(*id, "ping"),
        Request::Stats { id } => encode_control(*id, "stats"),
        Request::Shutdown { id, drain } => encode_shutdown(*id, *drain),
        Request::Measure {
            id,
            spec,
            deadline_ms,
        } => encode_measure_deadline(*id, spec, *deadline_ms),
        Request::Sweep {
            id,
            spec,
            envs,
            deadline_ms,
        } => encode_sweep_deadline(*id, spec, envs, *deadline_ms),
    }
}

// ---------------------------------------------------------------------------
// Protocol: responses
// ---------------------------------------------------------------------------

/// Seals a body (no closing brace) with its crc and closes the object.
fn seal(mut body: String) -> String {
    let crc = fnv64(&body);
    let _ = write!(body, ",\"crc\":{crc}}}");
    body
}

/// Verifies a sealed response line: the trailing `"crc"` must hash the
/// body exactly. Returns `false` for torn, truncated, or tampered lines.
#[must_use]
pub fn verify_sealed(line: &str) -> bool {
    let Some(at) = line.rfind(",\"crc\":") else {
        return false;
    };
    let Some(crc) = line[at + 7..]
        .strip_suffix('}')
        .and_then(|s| s.parse::<u64>().ok())
    else {
        return false;
    };
    fnv64(&line[..at]) == crc
}

/// Strips protocol-hostile characters from free-text values so that string
/// fields never contain quotes, brackets or braces (the `jsonl` scanner's
/// one assumption).
fn clean(s: &str) -> String {
    s.chars()
        .filter(|c| !matches!(c, '"' | '[' | ']' | '{' | '}'))
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn resp_line(
    id: u64,
    status: &str,
    code: &str,
    error: &str,
    setup: &str,
    checksum: u64,
    counters: &str,
    items: u64,
) -> String {
    seal(format!(
        "{{\"v\":{PROTO_VERSION},\"ev\":\"resp\",\"id\":{id},\"status\":\"{status}\",\
         \"code\":\"{code}\",\"error\":\"{error}\",\"setup\":\"{setup}\",\
         \"checksum\":{checksum},\"counters\":[{counters}],\"items\":{items}"
    ))
}

/// Stable short code for each measurement failure mode.
#[must_use]
pub fn error_code(e: &MeasureError) -> &'static str {
    match e {
        MeasureError::Link(_) => "link",
        MeasureError::Load(_) => "load",
        MeasureError::Run(_) => "run",
        MeasureError::WrongResult { .. } => "wrong_result",
        MeasureError::Watchdog { .. } => "watchdog",
    }
}

fn counters_csv(m: &Measurement) -> String {
    let v: Vec<String> = counters_to_vec(&m.counters)
        .iter()
        .map(u64::to_string)
        .collect();
    v.join(",")
}

/// Encodes the terminal response for one measurement result. This is the
/// byte-identity pivot: the daemon and the differential test both call it.
#[must_use]
pub fn encode_response(id: u64, r: &Result<Measurement, MeasureError>) -> String {
    match r {
        Ok(m) => resp_line(
            id,
            "ok",
            "",
            "",
            &clean(&m.setup),
            m.checksum,
            &counters_csv(m),
            0,
        ),
        Err(e) => resp_line(
            id,
            "err",
            error_code(e),
            &clean(&e.to_string()),
            "",
            0,
            "",
            0,
        ),
    }
}

/// The field-level payload of one sweep element — what the wire line and
/// the sweep journal both carry. Holding it (rather than the original
/// `Result`) lets a journal replay re-emit byte-identical item lines
/// without reconstructing a [`MeasureError`].
#[derive(Debug, Clone, PartialEq, Eq)]
struct ItemPayload {
    status: &'static str,
    code: String,
    error: String,
    setup: String,
    checksum: u64,
    counters: String,
}

impl ItemPayload {
    fn from_result(r: &Result<Measurement, MeasureError>) -> ItemPayload {
        match r {
            Ok(m) => ItemPayload {
                status: "ok",
                code: String::new(),
                error: String::new(),
                setup: clean(&m.setup),
                checksum: m.checksum,
                counters: counters_csv(m),
            },
            Err(e) => ItemPayload {
                status: "err",
                code: error_code(e).to_owned(),
                error: clean(&e.to_string()),
                setup: String::new(),
                checksum: 0,
                counters: String::new(),
            },
        }
    }

    fn item_line(&self, id: u64, seq: u64) -> String {
        seal(format!(
            "{{\"v\":{PROTO_VERSION},\"ev\":\"item\",\"id\":{id},\"seq\":{seq},\
             \"status\":\"{}\",\"code\":\"{}\",\"error\":\"{}\",\
             \"setup\":\"{}\",\"checksum\":{},\"counters\":[{}]",
            self.status, self.code, self.error, self.setup, self.checksum, self.counters
        ))
    }
}

/// Encodes one sweep element (`seq` is the setup index).
#[must_use]
pub fn encode_sweep_item(id: u64, seq: u64, r: &Result<Measurement, MeasureError>) -> String {
    ItemPayload::from_result(r).item_line(id, seq)
}

/// Encodes the terminal line of a sweep: `items` elements preceded it.
#[must_use]
pub fn encode_sweep_done(id: u64, items: u64) -> String {
    resp_line(id, "ok", "", "", "", 0, "", items)
}

/// Encodes a bare success (ping / shutdown acknowledgement).
#[must_use]
pub fn encode_ok(id: u64) -> String {
    resp_line(id, "ok", "", "", "", 0, "", 0)
}

/// Encodes a typed protocol/server error.
#[must_use]
pub fn encode_error(id: u64, code: &str, msg: &str) -> String {
    resp_line(id, "err", code, &clean(msg), "", 0, "", 0)
}

/// Encodes the explicit backpressure response for a full admission queue.
#[must_use]
pub fn encode_shed(id: u64) -> String {
    resp_line(id, "shed", "shed", "admission queue full", "", 0, "", 0)
}

/// Encodes the typed response for a request whose deadline expired before
/// a result was available. Distinct from `err`: nothing failed — the
/// caller ran out of time, and a retry without a deadline would succeed.
#[must_use]
pub fn encode_deadline(id: u64, items: u64) -> String {
    resp_line(
        id,
        "deadline",
        "deadline",
        "deadline exceeded before completion",
        "",
        0,
        "",
        items,
    )
}

/// Encodes the refusal a draining daemon answers new work with. Distinct
/// from both `err` (nothing is wrong) and `shed` (waiting out the
/// backpressure won't help — the daemon is going away).
#[must_use]
pub fn encode_draining(id: u64) -> String {
    resp_line(
        id,
        "draining",
        "drain",
        "daemon is draining and accepts no new work",
        "",
        0,
        "",
        0,
    )
}

/// Encodes a stats response: the daemon's supervision `health`
/// (`ok | degraded | draining`) plus named counters as a nested object.
#[must_use]
pub fn encode_stats(id: u64, health: &str, counters: &[(String, u64)]) -> String {
    let pairs: Vec<String> = counters
        .iter()
        .map(|(k, v)| format!("\"{}\":{v}", clean(k)))
        .collect();
    seal(format!(
        "{{\"v\":{PROTO_VERSION},\"ev\":\"stats\",\"id\":{id},\"health\":\"{}\",\
         \"counters\":{{{}}}",
        clean(health),
        pairs.join(",")
    ))
}

/// Extracts the request/response id from a line.
#[must_use]
pub fn line_id(line: &str) -> Option<u64> {
    field_u64(line, "id")
}

/// Extracts the event kind (`req`, `resp`, `item`, `stats`).
#[must_use]
pub fn line_ev(line: &str) -> Option<&str> {
    field_str(line, "ev")
}

/// Extracts the response status (`ok`, `err`, `shed`, `deadline`,
/// `draining`).
#[must_use]
pub fn line_status(line: &str) -> Option<&str> {
    field_str(line, "status")
}

/// Extracts the daemon health (`ok`, `degraded`, `draining`) from a
/// `stats` response line.
#[must_use]
pub fn line_health(line: &str) -> Option<&str> {
    field_str(line, "health")
}

/// Reads one named counter out of a `stats` response line.
#[must_use]
pub fn stats_counter(line: &str, name: &str) -> Option<u64> {
    let obj = field(line, "counters")?;
    field_u64(obj, name)
}

/// Validates a response line end to end: version, seal, and the exact
/// field list (names **and** order) for its event kind. The schema golden
/// and the chaos battery both lean on this.
pub fn validate_response_line(line: &str) -> Result<(), String> {
    if field_u64(line, "v") != Some(PROTO_VERSION) {
        return Err(format!("bad or missing protocol version: {line}"));
    }
    if !verify_sealed(line) {
        return Err(format!("crc seal mismatch (torn line?): {line}"));
    }
    let ev = line_ev(line).ok_or_else(|| format!("no ev field: {line}"))?;
    let want: &[&str] = match ev {
        "resp" => RESP_FIELDS,
        "item" => ITEM_FIELDS,
        "stats" => STATS_FIELDS,
        other => return Err(format!("unknown response event `{other}`")),
    };
    let keys = top_level_keys(line);
    if keys != want {
        return Err(format!(
            "field schema drifted for ev={ev}: got {keys:?}, want {want:?}"
        ));
    }
    Ok(())
}

/// The protocol schema as a printable snapshot, pinned by a `BIASLAB_BLESS`
/// golden so accidental wire-format drift fails a test, not a user.
#[must_use]
pub fn schema() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "biaslab serve protocol v{PROTO_VERSION}");
    let _ = writeln!(out, "ops: {}", OPS.join(","));
    for (kind, fields) in [
        ("req.control", REQ_CONTROL_FIELDS),
        ("req.shutdown", REQ_SHUTDOWN_FIELDS),
        ("req.measure", REQ_MEASURE_FIELDS),
        ("req.sweep", REQ_SWEEP_FIELDS),
        ("resp", RESP_FIELDS),
        ("item", ITEM_FIELDS),
        ("stats", STATS_FIELDS),
    ] {
        let _ = writeln!(out, "{kind}: {}", fields.join(","));
    }
    let _ = writeln!(out, "status: ok,err,shed,deadline,draining");
    let _ = writeln!(
        out,
        "codes: link,load,run,wrong_result,watchdog,proto,bench,machine,shed,panic,deadline,drain"
    );
    let _ = writeln!(out, "health: ok,degraded,draining");
    let _ = writeln!(out, "seal: crc = fnv64(line up to ,\"crc\":)");
    out
}

// ---------------------------------------------------------------------------
// Transport
// ---------------------------------------------------------------------------

/// A serve endpoint: a Unix socket path or a TCP host:port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Addr {
    /// A filesystem unix-domain socket.
    Unix(PathBuf),
    /// A TCP `host:port` endpoint.
    Tcp(String),
}

impl Addr {
    /// Parses `unix:/path/sock` or `tcp:host:port`.
    pub fn parse(s: &str) -> Result<Addr, String> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("empty unix socket path".to_owned());
            }
            Ok(Addr::Unix(PathBuf::from(path)))
        } else if let Some(hp) = s.strip_prefix("tcp:") {
            if !hp.contains(':') {
                return Err(format!("tcp address `{hp}` needs host:port"));
            }
            Ok(Addr::Tcp(hp.to_owned()))
        } else {
            Err(format!("address `{s}` must start with unix: or tcp:"))
        }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Addr::Unix(p) => write!(f, "unix:{}", p.display()),
            Addr::Tcp(hp) => write!(f, "tcp:{hp}"),
        }
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    /// Binds the address; returns the listener and the *actual* address
    /// (TCP port 0 resolves to the assigned port).
    fn bind(addr: &Addr) -> io::Result<(Listener, Addr)> {
        match addr {
            Addr::Unix(path) => {
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                Ok((Listener::Unix(l), addr.clone()))
            }
            Addr::Tcp(hp) => {
                let l = TcpListener::bind(hp.as_str())?;
                let actual = Addr::Tcp(l.local_addr()?.to_string());
                Ok((Listener::Tcp(l), actual))
            }
        }
    }

    fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Unix(l) => Ok(Stream::Unix(l.accept()?.0)),
            Listener::Tcp(l) => Ok(Stream::Tcp(l.accept()?.0)),
        }
    }
}

/// A connected socket, unix or tcp.
#[derive(Debug)]
pub enum Stream {
    /// A connected unix-domain socket.
    Unix(UnixStream),
    /// A connected TCP socket.
    Tcp(TcpStream),
}

impl Stream {
    fn connect(addr: &Addr) -> io::Result<Stream> {
        match addr {
            Addr::Unix(p) => Ok(Stream::Unix(UnixStream::connect(p)?)),
            Addr::Tcp(hp) => Ok(Stream::Tcp(TcpStream::connect(hp.as_str())?)),
        }
    }

    fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Unix(s) => Ok(Stream::Unix(s.try_clone()?)),
            Stream::Tcp(s) => Ok(Stream::Tcp(s.try_clone()?)),
        }
    }

    fn shutdown_both(&self) {
        let _ = match self {
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Endpoint to bind.
    pub addr: Addr,
    /// Worker-pool threads executing measurements.
    pub workers: usize,
    /// Admission-queue bound; a request arriving when the queue holds this
    /// many jobs is shed with an explicit backpressure response.
    pub queue_depth: usize,
    /// How long a graceful drain waits for in-flight work before
    /// force-stopping, in milliseconds.
    pub drain_timeout_ms: u64,
    /// How many panicked workers the supervisor will respawn over the
    /// daemon's lifetime; past the budget the pool stays degraded.
    pub restart_budget: usize,
    /// Seed for the supervisor's jittered respawn delays, so restart
    /// timing is replayable in tests.
    pub restart_seed: u64,
    /// Directory for crash-recovery sweep journals
    /// (`<dir>/<digest>.jsonl`); `None` disables journaling, which keeps
    /// in-process test servers hermetic.
    pub journal_dir: Option<PathBuf>,
}

impl ServerConfig {
    /// Default configuration: 4 workers, queue depth 64, 5 s drain
    /// timeout, restart budget 8, no sweep journal.
    #[must_use]
    pub fn new(addr: Addr) -> ServerConfig {
        ServerConfig {
            addr,
            workers: 4,
            queue_depth: 64,
            drain_timeout_ms: 5_000,
            restart_budget: 8,
            restart_seed: 0,
            journal_dir: None,
        }
    }
}

/// Serve-side counters, registered in the global telemetry registry so
/// they surface in exported traces and `biaslab trace --summary`.
struct ServeCounters {
    connections: telemetry::Counter,
    requests: telemetry::Counter,
    responses: telemetry::Counter,
    shed: telemetry::Counter,
    measures: telemetry::Counter,
    sweeps: telemetry::Counter,
    proto_errors: telemetry::Counter,
    queue_depth_max: telemetry::Counter,
    accept_faults: telemetry::Counter,
    torn_writes: telemetry::Counter,
    drops: telemetry::Counter,
    worker_panics: telemetry::Counter,
    worker_respawns: telemetry::Counter,
    deadline_expired: telemetry::Counter,
    drains: telemetry::Counter,
    drain_refused: telemetry::Counter,
    drain_forced: telemetry::Counter,
    journal_items: telemetry::Counter,
    resumed_items: telemetry::Counter,
}

impl ServeCounters {
    fn new() -> ServeCounters {
        let m = telemetry::metrics();
        ServeCounters {
            connections: m.counter("serve.connections"),
            requests: m.counter("serve.requests"),
            responses: m.counter("serve.responses"),
            shed: m.counter("serve.shed"),
            measures: m.counter("serve.measure"),
            sweeps: m.counter("serve.sweep"),
            proto_errors: m.counter("serve.proto_errors"),
            queue_depth_max: m.counter("serve.queue_depth_max"),
            accept_faults: m.counter("serve.accept_faults"),
            torn_writes: m.counter("serve.torn_writes"),
            drops: m.counter("serve.drops"),
            worker_panics: m.counter("serve.worker.panic"),
            worker_respawns: m.counter("serve.worker.respawn"),
            deadline_expired: m.counter("serve.deadline.expired"),
            drains: m.counter("serve.drain"),
            drain_refused: m.counter("serve.drain.refused"),
            drain_forced: m.counter("serve.drain.forced"),
            journal_items: m.counter("serve.sweep.journal_items"),
            resumed_items: m.counter("serve.sweep.resumed_items"),
        }
    }
}

/// The write half of one client connection, shared between the reader
/// thread (inline control responses, sheds) and the worker pool. The two
/// socket-write fault sites live here so every response path is covered.
struct ConnOut {
    stream: StdMutex<Option<Stream>>,
}

impl ConnOut {
    fn send(&self, shared: &Shared, line: &str) {
        let mut guard = lock_unpoisoned(&self.stream);
        let Some(stream) = guard.as_mut() else {
            return; // connection already torn down
        };
        if faults::fire(site::SERVE_DROP) {
            // Mid-response disconnect: the client sees EOF instead of a
            // terminal line and must reconnect + retry.
            shared.c.drops.add(1);
            stream.shutdown_both();
            *guard = None;
            return;
        }
        if faults::fire(site::SERVE_WRITE_SHORT) {
            // Short write: half a line, then the connection dies. The
            // missing newline / broken crc seal is the client's tell.
            shared.c.torn_writes.add(1);
            let bytes = line.as_bytes();
            let _ = stream.write_all(&bytes[..bytes.len() / 2]);
            let _ = stream.flush();
            stream.shutdown_both();
            *guard = None;
            return;
        }
        let ok = stream
            .write_all(format!("{line}\n").as_bytes())
            .and_then(|()| stream.flush())
            .is_ok();
        if ok {
            shared.c.responses.add(1);
        } else {
            stream.shutdown_both();
            *guard = None;
        }
    }
}

/// One admitted unit of work for the pool. The deadline is stamped at
/// admission, so time spent waiting in the queue counts against it.
struct Job {
    req: Request,
    out: Arc<ConnOut>,
    deadline: Option<Instant>,
}

/// Daemon lifecycle states (`Shared::state`).
const STATE_RUNNING: u8 = 0;
const STATE_DRAINING: u8 = 1;

struct Shared {
    orch: Arc<Orchestrator>,
    addr: Addr,
    queue: StdMutex<VecDeque<Job>>,
    ready: Condvar,
    queue_depth: usize,
    shutdown: AtomicBool,
    /// `STATE_RUNNING` or `STATE_DRAINING`; drain is one-way.
    state: AtomicU8,
    readers: StdMutex<Vec<thread::JoinHandle<()>>>,
    conns: StdMutex<Vec<Arc<ConnOut>>>,
    /// Pool-worker handles; the supervisor appends respawns, so teardown
    /// drains this under the lock rather than owning a fixed Vec.
    worker_handles: StdMutex<Vec<thread::JoinHandle<()>>>,
    /// Workers the pool was configured with; `live_workers` below it means
    /// the daemon is degraded.
    configured_workers: usize,
    live_workers: AtomicUsize,
    /// Jobs currently executing (popped but unanswered); drain waits for
    /// queue empty *and* this zero.
    inflight: AtomicUsize,
    /// Panicked workers awaiting respawn; the supervisor sleeps on the
    /// condvar.
    dead: StdMutex<usize>,
    dead_cv: Condvar,
    next_wid: AtomicU64,
    restart_budget: usize,
    restart_seed: u64,
    drain_timeout: Duration,
    journal_dir: Option<PathBuf>,
    c: ServeCounters,
}

impl Shared {
    /// The supervision state surfaced in `stats`: `draining` once a drain
    /// began, `degraded` while the pool is below configured strength,
    /// `ok` otherwise.
    fn health(&self) -> &'static str {
        if self.state.load(Ordering::SeqCst) == STATE_DRAINING {
            "draining"
        } else if self.live_workers.load(Ordering::SeqCst) < self.configured_workers {
            "degraded"
        } else {
            "ok"
        }
    }

    fn draining(&self) -> bool {
        self.state.load(Ordering::SeqCst) == STATE_DRAINING
    }
}

/// A running daemon. Threads: one acceptor, one supervisor (respawning
/// panicked workers), one reader per connection, `workers` pool threads
/// draining the bounded admission queue.
pub struct Server {
    shared: Arc<Shared>,
    acceptor: StdMutex<Option<thread::JoinHandle<()>>>,
    supervisor: StdMutex<Option<thread::JoinHandle<()>>>,
}

impl Server {
    /// Binds and starts the daemon on top of an orchestrator.
    pub fn start(cfg: &ServerConfig, orch: Arc<Orchestrator>) -> Result<Server, String> {
        let (listener, addr) =
            Listener::bind(&cfg.addr).map_err(|e| format!("cannot bind {}: {e}", cfg.addr))?;
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            orch,
            addr,
            queue: StdMutex::new(VecDeque::new()),
            ready: Condvar::new(),
            queue_depth: cfg.queue_depth.max(1),
            shutdown: AtomicBool::new(false),
            state: AtomicU8::new(STATE_RUNNING),
            readers: StdMutex::new(Vec::new()),
            conns: StdMutex::new(Vec::new()),
            worker_handles: StdMutex::new(Vec::new()),
            configured_workers: workers,
            live_workers: AtomicUsize::new(workers),
            inflight: AtomicUsize::new(0),
            dead: StdMutex::new(0),
            dead_cv: Condvar::new(),
            next_wid: AtomicU64::new(workers as u64 + 1),
            restart_budget: cfg.restart_budget,
            restart_seed: cfg.restart_seed,
            drain_timeout: Duration::from_millis(cfg.drain_timeout_ms),
            journal_dir: cfg.journal_dir.clone(),
            c: ServeCounters::new(),
        });
        {
            let mut handles = lock_unpoisoned(&shared.worker_handles);
            for wid in 1..=workers {
                let shared = Arc::clone(&shared);
                handles.push(thread::spawn(move || worker_loop(&shared, wid as u64)));
            }
        }
        let supervisor = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || supervisor_loop(&shared))
        };
        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || accept_loop(&shared, &listener))
        };
        Ok(Server {
            shared,
            acceptor: StdMutex::new(Some(acceptor)),
            supervisor: StdMutex::new(Some(supervisor)),
        })
    }

    /// The actual bound address (resolves TCP port 0).
    #[must_use]
    pub fn addr(&self) -> &Addr {
        &self.shared.addr
    }

    /// Jobs currently admitted but not yet picked up.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        lock_unpoisoned(&self.shared.queue).len()
    }

    /// Connections currently tracked. Closed connections are reclaimed as
    /// their readers exit, so this returns to zero on an idle daemon — a
    /// regression test pins that per-connection state cannot leak.
    #[must_use]
    pub fn live_connections(&self) -> usize {
        lock_unpoisoned(&self.shared.conns).len()
    }

    /// Pool workers currently alive (shrinks on a panic, recovers as the
    /// supervisor respawns).
    #[must_use]
    pub fn live_workers(&self) -> usize {
        self.shared.live_workers.load(Ordering::SeqCst)
    }

    /// The daemon's supervision health: `ok`, `degraded`, or `draining`.
    #[must_use]
    pub fn health(&self) -> &'static str {
        self.shared.health()
    }

    /// Asks the daemon to drain: stop accepting new work, finish what is
    /// admitted (bounded by the drain timeout), then stop. Idempotent;
    /// the foreground loop observes the state and tears down.
    pub fn request_drain(&self) {
        begin_drain(&self.shared);
    }

    /// Blocks until a `shutdown` request flips the flag (or a drain
    /// completes), then tears the daemon down. This is the
    /// `biaslab serve` foreground loop.
    pub fn run_until_shutdown(self) {
        self.run_until_shutdown_or(|| false);
    }

    /// [`Server::run_until_shutdown`] that also polls an external drain
    /// signal (the CLI wires SIGTERM here): when `drain_signal` first
    /// returns `true` the daemon drains gracefully, exactly as a
    /// `shutdown {"mode":"drain"}` request would.
    pub fn run_until_shutdown_or(self, drain_signal: impl Fn() -> bool) {
        loop {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            if drain_signal() {
                begin_drain(&self.shared);
            }
            if self.shared.draining() {
                self.await_drain();
                break;
            }
            thread::sleep(Duration::from_millis(20));
        }
        self.stop();
    }

    /// Waits for admitted work to finish (queue empty, nothing in
    /// flight), bounded by the drain timeout; a timeout force-stops and
    /// counts `serve.drain.forced`.
    fn await_drain(&self) {
        let give_up = Instant::now() + self.shared.drain_timeout;
        loop {
            let idle = lock_unpoisoned(&self.shared.queue).is_empty()
                && self.shared.inflight.load(Ordering::SeqCst) == 0;
            if idle || self.shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            if Instant::now() >= give_up {
                self.shared.c.drain_forced.add(1);
                return;
            }
            thread::sleep(Duration::from_millis(5));
        }
    }

    /// Stops accepting, drains the pool, joins every thread, and removes
    /// the unix socket file. Takes the server by value for the common
    /// case; delegates to [`Server::stop`], which is idempotent.
    pub fn shutdown(self) {
        self.stop();
    }

    /// The idempotent, panic-safe teardown behind [`Server::shutdown`]: a
    /// second call, or a call racing a drain, joins nothing twice and
    /// never hangs. Handles are taken out of their slots under a lock, so
    /// exactly one caller joins each thread.
    pub fn stop(&self) {
        begin_shutdown(&self.shared);
        // Join the supervisor before draining worker handles: once it has
        // exited, no new worker can be spawned, so the drain below is
        // complete rather than racing a respawn.
        if let Some(h) = lock_unpoisoned(&self.supervisor).take() {
            let _ = h.join();
        }
        if let Some(h) = lock_unpoisoned(&self.acceptor).take() {
            let _ = h.join();
        }
        let workers: Vec<_> = lock_unpoisoned(&self.shared.worker_handles)
            .drain(..)
            .collect();
        for h in workers {
            let _ = h.join();
        }
        let readers: Vec<_> = lock_unpoisoned(&self.shared.readers).drain(..).collect();
        for h in readers {
            let _ = h.join();
        }
        if let Addr::Unix(path) = &self.shared.addr {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Marks the daemon as draining (one-way, idempotent): the acceptor
/// refuses new connections, readers refuse new measure/sweep work with a
/// typed `draining` response, and the foreground loop waits for admitted
/// work before tearing down.
fn begin_drain(shared: &Shared) {
    if shared
        .state
        .compare_exchange(
            STATE_RUNNING,
            STATE_DRAINING,
            Ordering::SeqCst,
            Ordering::SeqCst,
        )
        .is_ok()
    {
        shared.c.drains.add(1);
    }
}

/// Flips the shutdown flag, wakes the pool and the supervisor, and pokes
/// the acceptor with a throwaway connection so its blocking `accept`
/// returns.
fn begin_shutdown(shared: &Shared) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    shared.ready.notify_all();
    shared.dead_cv.notify_all();
    if let Ok(s) = Stream::connect(&shared.addr) {
        s.shutdown_both();
    }
    // Unblock readers parked in read_line on idle connections: shutting
    // down the socket makes their next read return EOF.
    let conns: Vec<Arc<ConnOut>> = lock_unpoisoned(&shared.conns).drain(..).collect();
    for out in conns {
        if let Some(s) = lock_unpoisoned(&out.stream).as_ref() {
            s.shutdown_both();
        }
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &Listener) {
    loop {
        let conn = listener.accept();
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(conn) = conn else {
            // A persistent accept error (EMFILE under fd exhaustion, say)
            // must not turn the acceptor into a busy-spin.
            thread::sleep(std::time::Duration::from_millis(50));
            continue;
        };
        if shared.draining() {
            // A draining daemon accepts no new connections; existing ones
            // keep their readers so in-flight responses still land.
            conn.shutdown_both();
            continue;
        }
        if faults::fire(site::SERVE_ACCEPT) {
            // Accept failure: the freshly accepted connection is dropped on
            // the floor; the client reconnects and retries.
            shared.c.accept_faults.add(1);
            conn.shutdown_both();
            continue;
        }
        shared.c.connections.add(1);
        let shared2 = Arc::clone(shared);
        let handle = thread::spawn(move || reader_loop(&shared2, conn));
        let mut readers = lock_unpoisoned(&shared.readers);
        readers.retain(|h| !h.is_finished());
        readers.push(handle);
    }
}

/// Deterministic full-jitter respawn delay: uniform over an exponential
/// envelope (capped), drawn by hashing `(seed, respawn index)` — the same
/// schedule every run, so chaos tests can pin recovery timing.
fn respawn_delay_ms(seed: u64, respawn: u64) -> u64 {
    let cap = (4u64 << respawn.min(6)).min(200);
    fnv64(&format!("respawn {seed}:{respawn}")) % cap
}

/// The supervisor: sleeps until a worker dies, then — within the restart
/// budget — waits out a seeded jittered delay and spawns a replacement.
/// Past the budget the pool stays degraded (and `health` says so) rather
/// than masking a crash loop.
fn supervisor_loop(shared: &Arc<Shared>) {
    let mut respawns = 0u64;
    loop {
        {
            let mut dead = lock_unpoisoned(&shared.dead);
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if *dead > 0 {
                    *dead -= 1;
                    break;
                }
                dead = wait_unpoisoned(&shared.dead_cv, dead);
            }
        }
        if respawns as usize >= shared.restart_budget {
            continue; // budget exhausted: stay degraded
        }
        respawns += 1;
        thread::sleep(Duration::from_millis(respawn_delay_ms(
            shared.restart_seed,
            respawns,
        )));
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let wid = shared.next_wid.fetch_add(1, Ordering::SeqCst);
        let worker = {
            let shared = Arc::clone(shared);
            thread::spawn(move || worker_loop(&shared, wid))
        };
        lock_unpoisoned(&shared.worker_handles).push(worker);
        shared.live_workers.fetch_add(1, Ordering::SeqCst);
        shared.c.worker_respawns.add(1);
        faults::recovered("serve.worker.respawn");
    }
}

fn reader_loop(shared: &Arc<Shared>, conn: Stream) {
    let Ok(writer) = conn.try_clone() else {
        conn.shutdown_both();
        return;
    };
    let out = Arc::new(ConnOut {
        stream: StdMutex::new(Some(writer)),
    });
    lock_unpoisoned(&shared.conns).push(Arc::clone(&out));
    let mut reader = BufReader::new(conn);
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        shared.c.requests.add(1);
        if faults::fire(site::SERVE_SLOW) {
            // Slow client: a scheduling perturbation only; correctness of
            // every response must be unaffected.
            faults::delay(site::SERVE_SLOW);
        }
        let req = match parse_request(&line) {
            Ok(req) => req,
            Err(e) => {
                shared.c.proto_errors.add(1);
                let id = line_id(&line).unwrap_or(0);
                out.send(shared, &encode_error(id, "proto", &e.to_string()));
                continue;
            }
        };
        match req {
            Request::Ping { id } => out.send(shared, &encode_ok(id)),
            Request::Stats { id } => {
                let mut counters = shared.orch.metrics();
                counters.extend(telemetry::metrics().snapshot());
                counters.sort();
                counters.dedup();
                out.send(shared, &encode_stats(id, shared.health(), &counters));
            }
            Request::Shutdown { id, drain } => {
                if drain {
                    // Graceful: refuse new work, let the foreground loop
                    // finish admitted work and tear down. The connection
                    // stays open — control requests still answer. The state
                    // flips before the ack so a client that saw the ack can
                    // rely on every later request observing the drain.
                    begin_drain(shared);
                    out.send(shared, &encode_ok(id));
                } else {
                    out.send(shared, &encode_ok(id));
                    begin_shutdown(shared);
                    break;
                }
            }
            req @ (Request::Measure { .. } | Request::Sweep { .. }) => {
                let id = req.id();
                if shared.draining() {
                    // Not an error and not backpressure: the daemon is
                    // going away, and the client should go elsewhere.
                    shared.c.drain_refused.add(1);
                    out.send(shared, &encode_draining(id));
                    continue;
                }
                let deadline_ms = match &req {
                    Request::Measure { deadline_ms, .. } | Request::Sweep { deadline_ms, .. } => {
                        *deadline_ms
                    }
                    _ => 0,
                };
                // Stamped at admission: queue wait burns deadline time.
                let deadline =
                    (deadline_ms > 0).then(|| Instant::now() + Duration::from_millis(deadline_ms));
                // Admission control: shed synchronously when the bounded
                // queue is full — an explicit response, never a hang.
                let admitted = {
                    let mut q = lock_unpoisoned(&shared.queue);
                    if q.len() >= shared.queue_depth {
                        false
                    } else {
                        q.push_back(Job {
                            req,
                            out: Arc::clone(&out),
                            deadline,
                        });
                        shared.c.queue_depth_max.record_max(q.len() as u64);
                        true
                    }
                };
                if admitted {
                    shared.ready.notify_one();
                } else {
                    shared.c.shed.add(1);
                    out.send(shared, &encode_shed(id));
                }
            }
        }
    }
    let leftover = lock_unpoisoned(&out.stream).take();
    if let Some(s) = leftover {
        s.shutdown_both();
    }
    // Reclaim this connection's registry slot; a long-lived daemon must
    // not accumulate one ConnOut per connection ever accepted. (Jobs still
    // queued keep their own Arc, so in-flight responses are unaffected.)
    lock_unpoisoned(&shared.conns).retain(|c| !Arc::ptr_eq(c, &out));
}

fn worker_loop(shared: &Arc<Shared>, wid: u64) {
    telemetry::set_worker(wid);
    loop {
        let job = {
            let mut q = lock_unpoisoned(&shared.queue);
            loop {
                if let Some(job) = q.pop_front() {
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                q = wait_unpoisoned(&shared.ready, q);
            }
        };
        let Some(job) = job else {
            return;
        };
        let id = job.req.id();
        let out = Arc::clone(&job.out);
        // Supervision boundary: a panic anywhere in request handling must
        // not take the pool down with it. The client still gets exactly
        // one terminal (typed `panic`) response, the worker announces its
        // death to the supervisor, and this thread exits.
        shared.inflight.fetch_add(1, Ordering::SeqCst);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle_job(shared, job);
        }));
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
        if outcome.is_err() {
            shared.c.worker_panics.add(1);
            shared.live_workers.fetch_sub(1, Ordering::SeqCst);
            out.send(
                shared,
                &encode_error(id, "panic", "worker panicked executing the request"),
            );
            *lock_unpoisoned(&shared.dead) += 1;
            shared.dead_cv.notify_all();
            return;
        }
    }
}

/// `true` when the job's deadline (if any) has already passed.
fn expired(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

fn handle_job(shared: &Shared, job: Job) {
    let Job { req, out, deadline } = job;
    if faults::fire(site::SERVE_WORKER_PANIC) {
        // An arbitrary bug in request handling: the worker dies. The
        // catch_unwind boundary above turns this into a typed response
        // plus a supervised respawn; unrecoverable, because a real bug
        // would not politely retry.
        std::panic::panic_any(faults::InjectedPanic { recoverable: false });
    }
    match req {
        Request::Measure { id, spec, .. } => {
            shared.c.measures.add(1);
            if expired(deadline) {
                // Expired while queued: answer without simulating.
                shared.c.deadline_expired.add(1);
                out.send(shared, &encode_deadline(id, 0));
                return;
            }
            out.send(shared, &run_measure(shared, id, &spec, deadline));
        }
        Request::Sweep { id, spec, envs, .. } => {
            shared.c.sweeps.add(1);
            if expired(deadline) {
                shared.c.deadline_expired.add(1);
                out.send(shared, &encode_deadline(id, 0));
                return;
            }
            run_sweep(shared, &out, id, &spec, &envs, deadline);
        }
        // Control requests are answered inline by the reader.
        Request::Ping { .. } | Request::Stats { .. } | Request::Shutdown { .. } => {}
    }
}

fn run_measure(shared: &Shared, id: u64, spec: &MeasureSpec, deadline: Option<Instant>) -> String {
    let Some(harness) = shared.orch.harness(&spec.bench) else {
        return encode_error(id, "bench", &format!("unknown benchmark `{}`", spec.bench));
    };
    let Some(setup) = spec.setup() else {
        return encode_error(
            id,
            "machine",
            &format!("unknown machine `{}`", spec.machine),
        );
    };
    match shared
        .orch
        .measure_deadline(&harness, &setup, spec.size, deadline)
    {
        Ok(result) => encode_response(id, &result),
        Err(DeadlineExceeded) => {
            shared.c.deadline_expired.add(1);
            encode_deadline(id, 0)
        }
    }
}

/// Expands the sweep's env grid into concrete setups. Shared with the
/// differential battery so both sides sweep the exact same setups.
#[must_use]
pub fn sweep_setups(base: &ExperimentSetup, envs: &[u64]) -> Vec<ExperimentSetup> {
    envs.iter()
        .map(|&bytes| {
            match u32::try_from(bytes) {
                // parse_envs bounds daemon input; out-of-range values from
                // direct callers keep the base env rather than truncating.
                Ok(b) if env_in_range(bytes) && bytes != 0 => {
                    base.with_env(Environment::of_total_size(b))
                }
                _ => base.clone(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Sweep journal (crash recovery)
// ---------------------------------------------------------------------------

/// Version tag of one sweep-journal line. Bumping it orphans (and
/// quarantines) old journals rather than misreading them, exactly like
/// the orchestrator's `RECORD_VERSION`.
pub const JOURNAL_VERSION: u64 = 1;

/// Content-addresses a sweep for its journal file: FNV-64 over the
/// canonical spec rendering plus the env grid. Deliberately independent
/// of the request `id`, so a client retrying a killed sweep under a fresh
/// id still resumes the same journal.
#[must_use]
pub fn sweep_digest(spec: &MeasureSpec, envs: &[u64]) -> u64 {
    let envs: Vec<String> = envs.iter().map(u64::to_string).collect();
    fnv64(&format!(
        "sweep {} envs=[{}]",
        spec_fields(spec),
        envs.join(",")
    ))
}

/// One sweep-journal line: the item payload keyed by sweep digest and
/// sequence number, crc-sealed like every other line this module writes.
fn journal_line(digest: u64, seq: u64, p: &ItemPayload) -> String {
    seal(format!(
        "{{\"v\":{JOURNAL_VERSION},\"ev\":\"sweep_journal\",\"digest\":{digest},\"seq\":{seq},\
         \"status\":\"{}\",\"code\":\"{}\",\"error\":\"{}\",\"setup\":\"{}\",\
         \"checksum\":{},\"counters\":[{}]",
        p.status, p.code, p.error, p.setup, p.checksum, p.counters
    ))
}

/// Parses one journal line for the given sweep. `None` for torn lines
/// (a crash mid-append leaves a half-written tail that fails its crc),
/// foreign versions, and other sweeps' digests — the caller re-simulates
/// those items instead of trusting them.
fn parse_journal_line(line: &str, digest: u64) -> Option<(u64, ItemPayload)> {
    if !verify_sealed(line) {
        return None;
    }
    if field_u64(line, "v") != Some(JOURNAL_VERSION)
        || field_str(line, "ev") != Some("sweep_journal")
        || field_u64(line, "digest") != Some(digest)
    {
        return None;
    }
    let seq = field_u64(line, "seq")?;
    let status = match field_str(line, "status")? {
        "ok" => "ok",
        "err" => "err",
        _ => return None,
    };
    let counters = field(line, "counters")?
        .strip_prefix('[')?
        .strip_suffix(']')?;
    Some((
        seq,
        ItemPayload {
            status,
            code: field_str(line, "code")?.to_owned(),
            error: field_str(line, "error")?.to_owned(),
            setup: field_str(line, "setup")?.to_owned(),
            checksum: field_u64(line, "checksum")?,
            counters: counters.to_owned(),
        },
    ))
}

/// The write-ahead journal of one in-flight sweep: an append-only JSONL
/// file under the daemon's journal directory, named by the sweep digest.
/// Every completed item is appended and fsync'd *before* its line goes
/// out on the socket, so a daemon killed mid-sweep replays journaled
/// items on the next request instead of re-simulating them, converging
/// to byte-identical results. The file is deleted when the sweep's
/// terminal line is reached.
struct SweepJournal {
    path: PathBuf,
    file: File,
}

impl SweepJournal {
    /// Opens (or creates) the journal for `digest`, returning the journal
    /// and every intact item a previous run recorded. Recovery compacts
    /// the file through the tmp-then-rename discipline, which drops any
    /// torn tail a crash left behind — so later appends never concatenate
    /// onto half a line.
    fn open(dir: &Path, digest: u64) -> io::Result<(SweepJournal, HashMap<u64, ItemPayload>)> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{digest:016x}.jsonl"));
        let mut items: HashMap<u64, ItemPayload> = HashMap::new();
        if let Ok(existing) = std::fs::read_to_string(&path) {
            for line in existing.lines() {
                if let Some((seq, p)) = parse_journal_line(line, digest) {
                    items.insert(seq, p);
                }
            }
            if !items.is_empty() {
                let tmp = path.with_extension("jsonl.tmp");
                let compact = || -> io::Result<()> {
                    let mut f = File::create(&tmp)?;
                    let mut seqs: Vec<&u64> = items.keys().collect();
                    seqs.sort();
                    for &seq in seqs {
                        writeln!(f, "{}", journal_line(digest, seq, &items[&seq]))?;
                    }
                    f.sync_all()?;
                    std::fs::rename(&tmp, &path)?;
                    sync_parent_dir(&path);
                    Ok(())
                };
                if let Err(e) = compact() {
                    let _ = std::fs::remove_file(&tmp);
                    return Err(e);
                }
            } else {
                let _ = std::fs::remove_file(&path);
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok((SweepJournal { path, file }, items))
    }

    /// Appends one completed item, fsync'd — the write-ahead step. The
    /// crash fault site fires here: half a line reaches the file, no
    /// fsync happens, and the "daemon" dies (the worker panics
    /// unrecoverably); reload quarantines the torn line.
    fn append(&mut self, digest: u64, seq: u64, p: &ItemPayload) -> io::Result<()> {
        let line = journal_line(digest, seq, p);
        if faults::fire(site::SERVE_CRASH_JOURNAL) {
            let bytes = line.as_bytes();
            let _ = self.file.write_all(&bytes[..bytes.len() / 2]);
            let _ = self.file.flush();
            std::panic::panic_any(faults::InjectedPanic { recoverable: false });
        }
        self.file.write_all(format!("{line}\n").as_bytes())?;
        self.file.sync_all()
    }

    /// The sweep completed: its journal has served its purpose.
    fn complete(self) {
        drop(self.file);
        let _ = std::fs::remove_file(&self.path);
    }
}

#[allow(clippy::too_many_lines)]
fn run_sweep(
    shared: &Shared,
    out: &ConnOut,
    id: u64,
    spec: &MeasureSpec,
    envs: &[u64],
    deadline: Option<Instant>,
) {
    let Some(harness) = shared.orch.harness(&spec.bench) else {
        out.send(
            shared,
            &encode_error(id, "bench", &format!("unknown benchmark `{}`", spec.bench)),
        );
        return;
    };
    let Some(base) = spec.setup() else {
        out.send(
            shared,
            &encode_error(
                id,
                "machine",
                &format!("unknown machine `{}`", spec.machine),
            ),
        );
        return;
    };
    let setups = sweep_setups(&base, envs);
    let total = setups.len();

    // Crash recovery: journaled items are replayed from disk, never
    // re-simulated. Journaling is best-effort — an unwritable directory
    // degrades to the plain (journal-less) sweep rather than failing it.
    let digest = sweep_digest(spec, envs);
    let (mut journal, replayed) = match &shared.journal_dir {
        Some(dir) => match SweepJournal::open(dir, digest) {
            Ok((j, items)) => (Some(j), items),
            Err(_) => (None, HashMap::new()),
        },
        None => (None, HashMap::new()),
    };

    let missing: Vec<usize> = (0..total)
        .filter(|i| !replayed.contains_key(&(*i as u64)))
        .collect();
    let mut fresh: HashMap<usize, ItemPayload> = HashMap::new();
    if deadline.is_none() {
        // No deadline: the orchestrator's work-stealing parallel sweep.
        if !missing.is_empty() {
            let missing_setups: Vec<ExperimentSetup> =
                missing.iter().map(|&i| setups[i].clone()).collect();
            let results = shared.orch.sweep(&harness, &missing_setups, spec.size);
            for (&i, r) in missing.iter().zip(results.iter()) {
                fresh.insert(i, ItemPayload::from_result(r));
            }
        }
    } else {
        // Deadline-bounded: item at a time, re-checking the same
        // remaining-time arithmetic between items so an expiring sweep
        // keeps every item it completed.
        for &i in &missing {
            if expired(deadline) {
                break;
            }
            match shared
                .orch
                .measure_deadline(&harness, &setups[i], spec.size, deadline)
            {
                Ok(r) => {
                    fresh.insert(i, ItemPayload::from_result(&r));
                }
                Err(DeadlineExceeded) => break,
            }
        }
    }

    // Emit in sequence order; fresh items reach the fsync'd journal
    // before the socket (write-ahead), replayed ones count as resumed.
    for seq in 0..total {
        let s = seq as u64;
        let payload = if let Some(p) = replayed.get(&s) {
            shared.c.resumed_items.add(1);
            p.clone()
        } else if let Some(p) = fresh.remove(&seq) {
            if let Some(j) = journal.as_mut() {
                if j.append(digest, s, &p).is_ok() {
                    shared.c.journal_items.add(1);
                }
            }
            p
        } else {
            // The deadline expired before this item was simulated; every
            // seq below this one was emitted, so the terminal line still
            // reports how many items did make it.
            shared.c.deadline_expired.add(1);
            out.send(shared, &encode_deadline(id, s));
            return;
        };
        out.send(shared, &payload.item_line(id, s));
    }
    if let Some(j) = journal {
        j.complete();
    }
    out.send(shared, &encode_sweep_done(id, total as u64));
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// What went wrong with one exchange after all retries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Connect / write / read failed at the socket level.
    Io(String),
    /// The response arrived torn: truncated line or broken crc seal.
    Torn,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Torn => write!(f, "torn response (truncated line or crc mismatch)"),
        }
    }
}

/// A failed exchange: the error the last attempt died with, plus the
/// attempts actually consumed — so callers account retries honestly
/// instead of guessing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestFailed {
    /// What the final attempt failed with.
    pub error: ClientError,
    /// Connection attempts consumed (the client's whole retry budget).
    pub retries: u32,
}

impl fmt::Display for RequestFailed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (after {} attempts)", self.error, self.retries)
    }
}

/// One completed request/response exchange.
#[derive(Debug, Clone)]
pub struct Exchange {
    /// All verified response lines for the request id, terminal line last.
    pub lines: Vec<String>,
    /// Reconnect-and-resend attempts consumed before success.
    pub retries: u32,
}

impl Exchange {
    /// The terminal (`resp`/`stats`) line.
    #[must_use]
    pub fn terminal(&self) -> &str {
        self.lines.last().map(String::as_str).unwrap_or("")
    }
}

/// First-retry backoff span in milliseconds; doubles per attempt.
const BACKOFF_BASE_MS: u64 = 1;
/// Ceiling on any single backoff span, so a long retry budget cannot
/// stretch one exchange past the test suite's patience.
const BACKOFF_CAP_MS: u64 = 64;

/// Full-jitter exponential backoff before retry number `attempt`
/// (0-based): a seeded-hash draw in `[0, min(base << attempt, cap))`.
/// Pure function of `(seed, id, attempt)` — a fixed seed replays the
/// exact delay schedule, which keeps chaos-test retry counts and timing
/// deterministic, while distinct seeds (one per loadgen client) spread
/// simultaneous retries instead of thundering back in lockstep.
#[must_use]
pub fn backoff_delay_ms(seed: u64, id: u64, attempt: u32) -> u64 {
    let span = (BACKOFF_BASE_MS << attempt.min(6)).clamp(1, BACKOFF_CAP_MS);
    fnv64(&format!("backoff {seed}:{id}:{attempt}")) % span
}

/// A reconnecting client. Responses that arrive torn (EOF mid-exchange,
/// truncated line, crc mismatch) drop the connection and replay the whole
/// request on a fresh one after a seeded jittered exponential backoff;
/// the daemon's caches make the replay idempotent.
pub struct Client {
    addr: Addr,
    attempts: u32,
    backoff_seed: u64,
    conn: Option<(BufReader<Stream>, Stream)>,
}

impl Client {
    /// A client for the given endpoint with the default retry budget.
    #[must_use]
    pub fn new(addr: Addr) -> Client {
        Client {
            addr,
            attempts: 4,
            backoff_seed: 0,
            conn: None,
        }
    }

    /// Overrides the retry budget (total attempts, minimum 1).
    #[must_use]
    pub fn with_attempts(mut self, attempts: u32) -> Client {
        self.attempts = attempts.max(1);
        self
    }

    /// Seeds the retry backoff jitter (see [`backoff_delay_ms`]).
    #[must_use]
    pub fn with_backoff_seed(mut self, seed: u64) -> Client {
        self.backoff_seed = seed;
        self
    }

    fn connected(&mut self) -> io::Result<&mut (BufReader<Stream>, Stream)> {
        if self.conn.is_none() {
            let stream = Stream::connect(&self.addr)?;
            let writer = stream.try_clone()?;
            self.conn = Some((BufReader::new(stream), writer));
        }
        Ok(self.conn.as_mut().expect("connection just established"))
    }

    /// Sends one request line and collects its verified response lines.
    /// On failure the error reports the attempts actually consumed.
    pub fn request(&mut self, line: &str) -> Result<Exchange, RequestFailed> {
        let id = line_id(line).unwrap_or(0);
        let mut retries = 0u32;
        let mut last = ClientError::Io("no attempts made".to_owned());
        for attempt in 0..self.attempts {
            match self.try_once(line, id) {
                Ok(lines) => {
                    if attempt > 0 {
                        faults::recovered("serve.retry");
                    }
                    return Ok(Exchange { lines, retries });
                }
                Err(e) => {
                    self.conn = None;
                    retries += 1;
                    last = e;
                    if attempt + 1 < self.attempts {
                        thread::sleep(Duration::from_millis(backoff_delay_ms(
                            self.backoff_seed,
                            id,
                            attempt,
                        )));
                    }
                }
            }
        }
        Err(RequestFailed {
            error: last,
            retries,
        })
    }

    fn try_once(&mut self, line: &str, id: u64) -> Result<Vec<String>, ClientError> {
        let (reader, writer) = self
            .connected()
            .map_err(|e| ClientError::Io(e.to_string()))?;
        writer
            .write_all(format!("{line}\n").as_bytes())
            .and_then(|()| writer.flush())
            .map_err(|e| ClientError::Io(e.to_string()))?;
        let mut lines = Vec::new();
        loop {
            let mut buf = String::new();
            let n = reader
                .read_line(&mut buf)
                .map_err(|e| ClientError::Io(e.to_string()))?;
            if n == 0 {
                return Err(if lines.is_empty() {
                    ClientError::Io("connection closed before a response".to_owned())
                } else {
                    ClientError::Torn
                });
            }
            if !buf.ends_with('\n') {
                return Err(ClientError::Torn);
            }
            let resp = buf.trim_end_matches('\n');
            if resp.is_empty() {
                continue;
            }
            if !verify_sealed(resp) {
                return Err(ClientError::Torn);
            }
            if line_id(resp) != Some(id) {
                continue; // leftover from an interrupted earlier exchange
            }
            lines.push(resp.to_owned());
            if matches!(line_ev(resp), Some("resp" | "stats")) {
                return Ok(lines);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Loadgen
// ---------------------------------------------------------------------------

/// Load-driver configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Daemon endpoint to drive.
    pub addr: Addr,
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests issued per client.
    pub requests: usize,
    /// Master seed; each client derives its own via [`client_seed`].
    pub seed: u64,
}

/// Aggregated results of one loadgen run.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Concurrent client connections driven.
    pub clients: usize,
    /// Total requests issued across all clients.
    pub requests: usize,
    /// Exchanges whose terminal status was `ok`.
    pub ok: usize,
    /// Exchanges whose terminal status was a typed error.
    pub err: usize,
    /// Exchanges shed by admission control.
    pub shed: usize,
    /// Exchanges that failed even after retries (transport-level).
    pub failed: usize,
    /// Reconnect-and-replay attempts consumed across all clients.
    pub retries: u64,
    /// Wall-clock duration of the whole run.
    pub wall_ms: u64,
    /// Median exchange latency in microseconds.
    pub p50_us: u64,
    /// 99th-percentile exchange latency in microseconds.
    pub p99_us: u64,
    /// Orchestrator cache hits observed by the daemon.
    pub hits: u64,
    /// Orchestrator cache misses observed by the daemon.
    pub misses: u64,
}

impl LoadReport {
    /// Requests per second over the whole run.
    #[must_use]
    pub fn rps(&self) -> f64 {
        if self.wall_ms == 0 {
            0.0
        } else {
            self.requests as f64 * 1000.0 / self.wall_ms as f64
        }
    }

    /// Cache hit fraction (`hits / (hits + misses)`), 0 when unknown.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl fmt::Display for LoadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "serve.loadgen clients={} requests={} ok={} err={} shed={} failed={} retries={}",
            self.clients, self.requests, self.ok, self.err, self.shed, self.failed, self.retries
        )?;
        writeln!(
            f,
            "serve.loadgen wall_ms={} rps={:.1} p50_us={} p99_us={}",
            self.wall_ms,
            self.rps(),
            self.p50_us,
            self.p99_us
        )?;
        write!(
            f,
            "serve.loadgen hits={} misses={} hit_rate={:.3}",
            self.hits,
            self.misses,
            self.hit_rate()
        )
    }
}

/// Draws a randomized measurement spec from a small key space, so repeated
/// draws exercise both cache misses and hits. Shared with the differential
/// battery so daemon and direct paths see identical request populations.
#[must_use]
pub fn random_spec(rng: &mut StdRng) -> MeasureSpec {
    const BENCHES: &[&str] = &["hmmer", "milc", "mcf", "libquantum"];
    const MACHINES: &[&str] = &["core2", "pentium4", "o3cpu"];
    const ENVS: &[u64] = &[0, 64, 128, 612];
    MeasureSpec {
        bench: BENCHES[rng.gen_range(0..BENCHES.len())].to_owned(),
        machine: MACHINES[rng.gen_range(0..MACHINES.len())].to_owned(),
        opt: if rng.gen::<bool>() {
            OptLevel::O2
        } else {
            OptLevel::O3
        },
        order: if rng.gen::<bool>() {
            LinkOrder::Default
        } else {
            LinkOrder::Random(rng.gen_range(0..4u64))
        },
        text_offset: 0,
        stack_shift: 0,
        env: ENVS[rng.gen_range(0..ENVS.len())],
        size: InputSize::Test,
        budget: 0,
    }
}

/// Deterministic per-client seed derivation (splitmix-style spread).
#[must_use]
pub fn client_seed(seed: u64, client: usize) -> u64 {
    seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(client as u64)
}

#[derive(Default)]
struct Tally {
    ok: usize,
    err: usize,
    shed: usize,
    failed: usize,
    retries: u64,
    latencies_us: Vec<u64>,
}

fn loadgen_client(cfg: &LoadgenConfig, client_idx: usize) -> Tally {
    let mut rng = StdRng::seed_from_u64(client_seed(cfg.seed, client_idx));
    let mut client =
        Client::new(cfg.addr.clone()).with_backoff_seed(client_seed(cfg.seed, client_idx));
    let mut tally = Tally::default();
    for seq in 0..cfg.requests {
        let id = client_idx as u64 * 1_000_000 + seq as u64;
        let line = encode_measure(id, &random_spec(&mut rng));
        let start = Instant::now();
        match client.request(&line) {
            Ok(ex) => {
                tally.retries += u64::from(ex.retries);
                tally.latencies_us.push(start.elapsed().as_micros() as u64);
                match line_status(ex.terminal()) {
                    Some("ok") => tally.ok += 1,
                    Some("shed") => tally.shed += 1,
                    _ => tally.err += 1,
                }
            }
            Err(fail) => {
                tally.retries += u64::from(fail.retries);
                tally.failed += 1;
            }
        }
    }
    tally
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Replays `clients * requests` randomized measurement requests from
/// concurrent connections and reports throughput, latency percentiles and
/// cache effectiveness (pulled from a final `stats` request).
pub fn loadgen(cfg: &LoadgenConfig) -> Result<LoadReport, String> {
    let start = Instant::now();
    let tallies: Vec<Tally> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|ci| scope.spawn(move |_| loadgen_client(cfg, ci)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen client panicked"))
            .collect()
    })
    .map_err(|_| "loadgen client panicked".to_owned())?;
    let wall_ms = start.elapsed().as_millis() as u64;

    let mut report = LoadReport {
        clients: cfg.clients,
        requests: cfg.clients * cfg.requests,
        wall_ms,
        ..LoadReport::default()
    };
    let mut latencies: Vec<u64> = Vec::new();
    for t in tallies {
        report.ok += t.ok;
        report.err += t.err;
        report.shed += t.shed;
        report.failed += t.failed;
        report.retries += t.retries;
        latencies.extend(t.latencies_us);
    }
    latencies.sort_unstable();
    report.p50_us = percentile(&latencies, 0.50);
    report.p99_us = percentile(&latencies, 0.99);

    let mut stats_client = Client::new(cfg.addr.clone());
    if let Ok(ex) = stats_client.request(&encode_control(999_999_999, "stats")) {
        let line = ex.terminal();
        report.hits = stats_counter(line, "orch.hits").unwrap_or(0);
        report.misses = stats_counter(line, "orch.misses").unwrap_or(0);
    }
    Ok(report)
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn temp_sock(tag: &str) -> Addr {
        let dir = std::env::temp_dir();
        Addr::Unix(dir.join(format!("biaslab-serve-{tag}-{}.sock", std::process::id())))
    }

    fn spec(bench: &str) -> MeasureSpec {
        MeasureSpec {
            bench: bench.to_owned(),
            machine: "core2".to_owned(),
            opt: OptLevel::O2,
            order: LinkOrder::Default,
            text_offset: 0,
            stack_shift: 0,
            env: 0,
            size: InputSize::Test,
            budget: 0,
        }
    }

    #[test]
    fn control_roundtrip() {
        for op in ["ping", "stats", "shutdown"] {
            let line = encode_control(42, op);
            let req = parse_request(&line).expect("control request parses");
            assert_eq!(encode_request(&req), line);
        }
    }

    #[test]
    fn measure_roundtrip() {
        let mut s = spec("hmmer");
        s.order = LinkOrder::Random(7);
        s.env = 612;
        s.budget = 1000;
        let line = encode_measure(9, &s);
        let req = parse_request(&line).expect("measure request parses");
        assert_eq!(
            req,
            Request::Measure {
                id: 9,
                spec: s,
                deadline_ms: 0
            }
        );
        assert_eq!(encode_request(&req), line);
    }

    #[test]
    fn sweep_roundtrip() {
        let line = encode_sweep(3, &spec("milc"), &[0, 64, 4096]);
        let req = parse_request(&line).expect("sweep request parses");
        match &req {
            Request::Sweep { id, envs, .. } => {
                assert_eq!(*id, 3);
                assert_eq!(envs, &[0, 64, 4096]);
            }
            other => panic!("expected sweep, got {other:?}"),
        }
        assert_eq!(encode_request(&req), line);
    }

    #[test]
    fn malformed_lines_rejected_deterministically() {
        let cases: &[(&str, ProtoError)] = &[
            ("", ProtoError::Empty),
            ("   ", ProtoError::Empty),
            ("{\"ev\":\"req\"}", ProtoError::BadVersion(String::new())),
            (
                "{\"v\":2,\"ev\":\"req\",\"id\":1,\"op\":\"ping\"}",
                ProtoError::BadVersion("2".into()),
            ),
            (
                "{\"v\":1,\"ev\":\"resp\",\"id\":1}",
                ProtoError::NotARequest("resp".into()),
            ),
            (
                "{\"v\":1,\"ev\":\"req\",\"op\":\"ping\"}",
                ProtoError::MissingField("id"),
            ),
            (
                "{\"v\":1,\"ev\":\"req\",\"id\":1}",
                ProtoError::MissingField("op"),
            ),
            (
                "{\"v\":1,\"ev\":\"req\",\"id\":1,\"op\":\"dance\"}",
                ProtoError::UnknownOp("dance".into()),
            ),
            (
                "{\"v\":1,\"ev\":\"req\",\"id\":1,\"op\":\"ping\",\"extra\":3}",
                ProtoError::UnknownField("extra".into()),
            ),
            (
                "{\"v\":1,\"ev\":\"req\",\"id\":1,\"op\":\"measure\"}",
                ProtoError::MissingField("bench"),
            ),
        ];
        for (line, want) in cases {
            assert_eq!(parse_request(line).unwrap_err(), *want, "line: {line}");
        }
        // Truncation of a valid line never panics and always rejects.
        let full = encode_measure(5, &spec("hmmer"));
        for cut in 0..full.len() {
            let truncated = &full[..cut];
            if truncated.trim().is_empty() {
                continue;
            }
            assert!(
                parse_request(truncated).is_err(),
                "truncated at {cut} parsed: {truncated}"
            );
        }
    }

    #[test]
    fn bad_values_rejected_in_field_order() {
        let base = encode_measure(1, &spec("hmmer"));
        let swap = |from: &str, to: &str| base.replace(from, to);
        assert_eq!(
            parse_request(&swap("\"machine\":\"core2\"", "\"machine\":\"vax\"")).unwrap_err(),
            ProtoError::BadValue("machine", "vax".into())
        );
        assert_eq!(
            parse_request(&swap("\"opt\":\"O2\"", "\"opt\":\"O9\"")).unwrap_err(),
            ProtoError::BadValue("opt", "O9".into())
        );
        assert_eq!(
            parse_request(&swap("\"env\":0", "\"env\":7")).unwrap_err(),
            ProtoError::BadValue("env", "7".into())
        );
        // Multiple problems: the canonical-order first one wins.
        let both = swap("\"machine\":\"core2\"", "\"machine\":\"vax\"")
            .replace("\"opt\":\"O2\"", "\"opt\":\"O9\"");
        assert_eq!(
            parse_request(&both).unwrap_err(),
            ProtoError::BadValue("machine", "vax".into())
        );
    }

    #[test]
    fn env_out_of_range_rejected_never_truncated() {
        let base = encode_measure(1, &spec("hmmer"));
        // `2^32 + 7` once truncated to 7 on the worker thread and tripped
        // `Environment::of_total_size`'s 23-byte assert — one request per
        // worker wedged the daemon; `MAX_ENV_BYTES + 1` once allocated a
        // fill string of that size only to fail the load.
        for bad in [MAX_ENV_BYTES + 1, (1u64 << 32) + 7, u64::MAX] {
            let line = base.replace("\"env\":0", &format!("\"env\":{bad}"));
            assert_eq!(
                parse_request(&line).unwrap_err(),
                ProtoError::BadValue("env", bad.to_string()),
                "env={bad}"
            );
            let mut s = spec("hmmer");
            s.env = bad;
            assert!(s.setup().is_none(), "setup accepted env={bad}");
            let sweep = encode_sweep(2, &spec("hmmer"), &[0, bad]);
            assert_eq!(
                parse_request(&sweep).unwrap_err(),
                ProtoError::BadValue("envs", bad.to_string()),
                "envs entry {bad}"
            );
        }
        // The boundary values stay accepted and resolve to a setup.
        for good in [0, MIN_ENV_BYTES, MAX_ENV_BYTES] {
            let line = base.replace("\"env\":0", &format!("\"env\":{good}"));
            match parse_request(&line).expect("in-range env parses") {
                Request::Measure { spec, .. } => {
                    assert!(spec.setup().is_some(), "env={good}");
                }
                other => panic!("expected measure, got {other:?}"),
            }
        }
        // sweep_setups holds the same line for direct callers: an
        // out-of-range entry keeps the base environment, never truncates.
        let base_setup = spec("hmmer").setup().unwrap();
        let setups = sweep_setups(&base_setup, &[(1 << 32) + 7, 64]);
        assert_eq!(
            setups[0].env.stack_bytes(),
            base_setup.env.stack_bytes(),
            "out-of-range entry must keep the base env"
        );
        assert_eq!(setups[1].env.stack_bytes(), 64);
    }

    #[test]
    fn failed_request_reports_consumed_attempts() {
        // Nothing listens on this socket: every attempt dies at connect,
        // and the error must account for all of them.
        let addr = temp_sock("nobody");
        let mut client = Client::new(addr).with_attempts(3);
        let fail = client.request(&encode_control(1, "ping")).unwrap_err();
        assert_eq!(fail.retries, 3, "all consumed attempts counted");
        assert!(matches!(fail.error, ClientError::Io(_)));
    }

    #[test]
    fn finished_connections_are_reclaimed() {
        let addr = temp_sock("reclaim");
        let server = Server::start(
            &ServerConfig::new(addr.clone()),
            Arc::new(Orchestrator::default()),
        )
        .expect("server starts");
        for i in 0..4 {
            let mut client = Client::new(addr.clone());
            let ex = client
                .request(&encode_control(i, "ping"))
                .expect("ping answered");
            assert_eq!(line_status(ex.terminal()), Some("ok"));
        }
        // Readers observe the disconnects asynchronously; poll briefly.
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        while server.live_connections() > 0 && Instant::now() < deadline {
            thread::sleep(std::time::Duration::from_millis(10));
        }
        assert_eq!(
            server.live_connections(),
            0,
            "per-connection state leaked after clients disconnected"
        );
        server.shutdown();
    }

    #[test]
    fn seal_detects_tearing() {
        let line = encode_ok(7);
        assert!(verify_sealed(&line));
        for cut in 0..line.len() {
            assert!(
                !verify_sealed(&line[..cut]),
                "truncation at {cut} passed the seal"
            );
        }
        let tampered = line.replace("\"status\":\"ok\"", "\"status\":\"er\"");
        assert!(!verify_sealed(&tampered));
    }

    #[test]
    fn response_lines_validate_against_schema() {
        let m = Measurement {
            setup: "core2/O2/default".to_owned(),
            counters: Default::default(),
            checksum: 0xabc,
        };
        let lines = [
            encode_response(11, &Ok(m.clone())),
            encode_response(12, &Err(MeasureError::Watchdog { limit: 9 })),
            encode_sweep_item(13, 0, &Ok(m)),
            encode_sweep_done(13, 1),
            encode_shed(14),
            encode_error(15, "proto", "missing field `op`"),
            encode_stats(16, "ok", &[("orch.hits".to_owned(), 3)]),
            encode_deadline(17, 2),
            encode_draining(18),
        ];
        for line in &lines {
            validate_response_line(line).expect("schema-valid line");
        }
    }

    #[test]
    fn addr_parse_roundtrip() {
        for s in ["unix:/tmp/x.sock", "tcp:127.0.0.1:0"] {
            assert_eq!(Addr::parse(s).unwrap().to_string(), s);
        }
        assert!(Addr::parse("ipc:nope").is_err());
        assert!(Addr::parse("unix:").is_err());
        assert!(Addr::parse("tcp:noport").is_err());
    }

    #[test]
    fn ping_and_shutdown_over_unix_socket() {
        let addr = temp_sock("ping");
        let server = Server::start(
            &ServerConfig::new(addr.clone()),
            Arc::new(Orchestrator::default()),
        )
        .expect("server starts");
        let mut client = Client::new(addr.clone());
        let ex = client
            .request(&encode_control(1, "ping"))
            .expect("ping answered");
        assert_eq!(line_status(ex.terminal()), Some("ok"));
        validate_response_line(ex.terminal()).expect("valid ping response");
        let ex = client
            .request(&encode_control(2, "shutdown"))
            .expect("shutdown acked");
        assert_eq!(line_status(ex.terminal()), Some("ok"));
        server.shutdown();
        if let Addr::Unix(path) = &addr {
            assert!(!path.exists(), "socket file leaked: {}", path.display());
        }
    }

    #[test]
    fn measure_over_socket_matches_direct_bytes() {
        let addr = temp_sock("diff");
        let server = Server::start(
            &ServerConfig::new(addr.clone()),
            Arc::new(Orchestrator::default()),
        )
        .expect("server starts");
        let s = spec("hmmer");
        let mut client = Client::new(addr);
        let ex = client
            .request(&encode_measure(100, &s))
            .expect("measure answered");

        let direct = Orchestrator::default();
        let harness = direct.harness("hmmer").expect("known benchmark");
        let result = direct.measure(&harness, &s.setup().unwrap(), s.size);
        assert_eq!(ex.terminal(), encode_response(100, &result));
        server.shutdown();
    }

    #[test]
    fn full_admission_queue_sheds_instead_of_hanging() {
        let addr = temp_sock("shed");
        let mut cfg = ServerConfig::new(addr.clone());
        cfg.workers = 1;
        cfg.queue_depth = 1;
        let server = Server::start(&cfg, Arc::new(Orchestrator::default())).expect("server starts");

        let mut client = Client::new(addr);
        // Occupy the single worker with a wide cold sweep, then flood.
        let envs: Vec<u64> = (0..8).map(|i| 64 + i * 64).collect();
        let sweep_line = encode_sweep(500, &spec("gcc"), &envs);
        let (reader, writer) = client.connected().expect("connect");
        writer
            .write_all(format!("{sweep_line}\n").as_bytes())
            .expect("send sweep");
        let mut flood_specs = Vec::new();
        for i in 0..16u64 {
            let mut s = spec("hmmer");
            s.text_offset = (i * 8) as u32;
            flood_specs.push(encode_measure(600 + i, &s));
        }
        for line in &flood_specs {
            writer
                .write_all(format!("{line}\n").as_bytes())
                .expect("send flood");
        }
        writer.flush().expect("flush");

        // Every request must get exactly one terminal response; at least one
        // flood request must be shed (queue depth 1, single busy worker).
        let mut terminals = std::collections::HashMap::new();
        let mut shed = 0usize;
        while terminals.len() < 17 {
            let mut buf = String::new();
            let n = reader.read_line(&mut buf).expect("read response");
            assert!(n > 0, "server closed before all responses arrived");
            let line = buf.trim_end();
            if line.is_empty() || line_ev(line) != Some("resp") {
                continue;
            }
            assert!(verify_sealed(line), "torn response: {line}");
            let id = line_id(line).expect("response id");
            assert!(
                terminals.insert(id, line.to_owned()).is_none(),
                "duplicate terminal for {id}"
            );
            if line_status(line) == Some("shed") {
                shed += 1;
            }
        }
        assert!(shed >= 1, "expected at least one shed response");
        assert_eq!(server.queue_len(), 0, "admission queue leaked jobs");
        server.shutdown();
    }

    #[test]
    fn stop_is_idempotent_and_safe_under_races() {
        let addr = temp_sock("stop-twice");
        let server = Server::start(
            &ServerConfig::new(addr.clone()),
            Arc::new(Orchestrator::default()),
        )
        .expect("server starts");
        let mut client = Client::new(addr);
        client
            .request(&encode_control(1, "ping"))
            .expect("ping answered");
        // Second (and third) stop must not double-join, panic, or hang —
        // including one racing a drain request.
        server.request_drain();
        server.stop();
        server.stop();
        server.stop();
        assert_eq!(server.health(), "draining");
    }

    #[test]
    fn drain_refuses_new_work_but_answers_control() {
        let addr = temp_sock("drain-refuse");
        let server = Server::start(
            &ServerConfig::new(addr.clone()),
            Arc::new(Orchestrator::default()),
        )
        .expect("server starts");
        let mut client = Client::new(addr);
        client
            .request(&encode_shutdown(1, true))
            .expect("drain acknowledged");
        assert_eq!(server.health(), "draining");
        // The existing connection still answers control requests...
        let ex = client
            .request(&encode_control(2, "stats"))
            .expect("stats answered");
        assert_eq!(line_health(ex.terminal()), Some("draining"));
        // ...but refuses new measurement work with a typed drain response.
        let ex = client
            .request(&encode_measure(3, &spec("hmmer")))
            .expect("refusal is a clean terminal, not an error");
        assert_eq!(line_status(ex.terminal()), Some("draining"));
        assert_eq!(ex.terminal(), encode_draining(3));
        server.stop();
    }

    #[test]
    fn deadline_already_expired_gets_typed_response() {
        let addr = temp_sock("deadline");
        let server = Server::start(
            &ServerConfig::new(addr.clone()),
            Arc::new(Orchestrator::default()),
        )
        .expect("server starts");
        let mut client = Client::new(addr);
        // A 1ms deadline on a cold gcc sweep cannot be met; the client must
        // get a typed deadline terminal, never a hang or a torn line.
        let line = encode_sweep_deadline(42, &spec("gcc"), &[0, 64, 128], 1);
        let ex = client.request(&line).expect("deadline answered");
        assert_eq!(line_status(ex.terminal()), Some("deadline"));
        assert_eq!(field_str(ex.terminal(), "code"), Some("deadline"));
        server.shutdown();
    }

    #[test]
    fn backoff_is_deterministic_capped_and_seed_spread() {
        for attempt in 0..10 {
            let a = backoff_delay_ms(7, 42, attempt);
            assert_eq!(a, backoff_delay_ms(7, 42, attempt), "deterministic");
            assert!(a < BACKOFF_CAP_MS, "within cap");
            let span = (BACKOFF_BASE_MS << attempt.min(6)).min(BACKOFF_CAP_MS);
            assert!(a < span.max(1), "within this attempt's span");
        }
        let spread: std::collections::HashSet<u64> =
            (0..32).map(|seed| backoff_delay_ms(seed, 1, 6)).collect();
        assert!(spread.len() > 8, "distinct seeds spread retry delays");
    }

    #[test]
    fn sweep_digest_ignores_request_id_but_not_grid() {
        let s = spec("hmmer");
        let d = sweep_digest(&s, &[0, 64]);
        assert_eq!(
            sweep_digest(&s, &[0, 64]),
            d,
            "digest is a pure function of spec+grid"
        );
        assert_ne!(sweep_digest(&s, &[0, 64, 128]), d, "grid changes digest");
        let mut other = spec("hmmer");
        other.env = 612;
        assert_ne!(sweep_digest(&other, &[0, 64]), d, "spec changes digest");
    }

    #[test]
    fn journal_replays_items_and_quarantines_torn_tail() {
        let dir = std::env::temp_dir().join(format!("biaslab-journal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let digest = 0xdead_beef_u64;
        let payload = ItemPayload {
            status: "ok",
            code: String::new(),
            error: String::new(),
            setup: "core2/O2/default".to_owned(),
            checksum: 7,
            counters: "1,2,3".to_owned(),
        };
        {
            let (mut j, replayed) = SweepJournal::open(&dir, digest).expect("journal opens");
            assert!(replayed.is_empty());
            j.append(digest, 0, &payload).expect("append");
            j.append(digest, 1, &payload).expect("append");
            // Simulate a crash mid-append: a torn half-line tail.
            let line = journal_line(digest, 2, &payload);
            j.file
                .write_all(&line.as_bytes()[..line.len() / 2])
                .expect("torn write");
        }
        let (j, replayed) = SweepJournal::open(&dir, digest).expect("journal reopens");
        assert_eq!(
            replayed.len(),
            2,
            "intact items replayed, torn tail dropped"
        );
        assert_eq!(replayed[&0], payload);
        assert!(
            !std::fs::read_to_string(&j.path)
                .expect("journal readable")
                .contains("\"seq\":2"),
            "compaction removed the torn tail"
        );
        j.complete();
        assert!(!dir.join(format!("{digest:016x}.jsonl")).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    proptest! {
        #[test]
        fn prop_request_roundtrip(
            id in 0u64..u64::MAX / 2,
            bench in prop::sample::select(vec!["hmmer", "milc", "mcf"]),
            machine in prop::sample::select(vec!["core2", "pentium4", "o3cpu"]),
            opt in prop::sample::select(OptLevel::ALL.to_vec()),
            order_seed in 0u64..1000,
            order_default in any::<bool>(),
            text_offset in 0u32..4096,
            stack_shift in 0u32..4096,
            env in prop::sample::select(vec![0u64, 23, 64, 612, 4096]),
            budget in prop::sample::select(vec![0u64, 9, 1 << 20]),
            envs in prop::collection::vec(prop::sample::select(vec![0u64, 64, 612]), 0..5),
            sweep in any::<bool>(),
        ) {
            // Derived, not an extra strategy: the vendored proptest caps
            // tuples at 12 parameters.
            let deadline_ms = [0u64, 1, 250, 60_000][(id % 4) as usize];
            let spec = MeasureSpec {
                bench: bench.to_owned(),
                machine: machine.to_owned(),
                opt,
                order: if order_default {
                    LinkOrder::Default
                } else {
                    LinkOrder::Random(order_seed)
                },
                text_offset,
                stack_shift,
                env,
                size: InputSize::Test,
                budget,
            };
            let req = if sweep {
                Request::Sweep { id, spec, envs, deadline_ms }
            } else {
                Request::Measure { id, spec, deadline_ms }
            };
            let line = encode_request(&req);
            prop_assert_eq!(parse_request(&line).unwrap(), req.clone());
            prop_assert_eq!(encode_request(&parse_request(&line).unwrap()), line);
        }

        #[test]
        fn prop_parse_never_panics_and_is_deterministic(line in "[ -~]{0,200}") {
            let a = parse_request(&line);
            let b = parse_request(&line);
            prop_assert_eq!(a, b);
        }

        #[test]
        fn prop_mutated_requests_never_panic(
            cut in 0usize..200,
            flip in 0usize..200,
            byte in 0u8..128,
        ) {
            let full = encode_sweep(77, &MeasureSpec {
                bench: "hmmer".to_owned(),
                machine: "core2".to_owned(),
                opt: OptLevel::O3,
                order: LinkOrder::Random(3),
                text_offset: 64,
                stack_shift: 128,
                env: 612,
                size: InputSize::Test,
                budget: 0,
            }, &[0, 64]);
            let mut bytes = full.into_bytes();
            let cut = cut.min(bytes.len());
            bytes.truncate(cut);
            if !bytes.is_empty() {
                let at = flip % bytes.len();
                bytes[at] = byte.max(b' ');
            }
            let line = String::from_utf8_lossy(&bytes).into_owned();
            let _ = parse_request(&line); // must not panic
        }

        #[test]
        fn prop_seal_rejects_any_truncation(id in 0u64..1_000_000) {
            let line = encode_shed(id);
            prop_assert!(verify_sealed(&line));
            for cut in (0..line.len()).step_by(7) {
                prop_assert!(!verify_sealed(&line[..cut]));
            }
        }
    }
}
