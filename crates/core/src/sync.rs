//! Poison-recovering wrappers around the std synchronization primitives.
//!
//! The orchestrator's in-flight cells, the serve daemon's queues and the
//! fault registry all use std mutexes (the offline `parking_lot` stand-in
//! has no condvar), and std mutexes poison when a holder panics. Every
//! value protected by these locks stays consistent across a panic — each
//! is written in a single statement — so poison carries no information we
//! need, and propagating it (the old `expect`s) turned one panicked
//! thread into a process-wide wedge for everything sharing the lock.
//! These helpers used to be copy-pasted into `orchestrator`, `serve` and
//! `faults`; they live here once now.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError, WaitTimeoutResult};
use std::time::Duration;

/// Locks a std mutex, recovering from poison.
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait`] with the same poison recovery as [`lock_unpoisoned`].
pub(crate) fn wait_unpoisoned<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait_timeout`] with the same poison recovery. Deadline-bound
/// waiters (single-flight followers with a request deadline) use this so a
/// panicked leader can neither wedge nor poison them.
pub(crate) fn wait_timeout_unpoisoned<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    cv.wait_timeout(guard, dur)
        .unwrap_or_else(PoisonError::into_inner)
}
