//! Statistics for performance data: descriptive summaries, bootstrap
//! confidence intervals, permutation tests and violin summaries.
//!
//! Everything takes an explicit seed where randomness is involved, so
//! experiment reports are bit-reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Descriptive summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or contains NaN.
    #[must_use]
    pub fn of(data: &[f64]) -> Summary {
        assert!(!data.is_empty(), "cannot summarize an empty sample");
        assert!(data.iter().all(|x| !x.is_nan()), "sample contains NaN");
        let n = data.len();
        let mean = data.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Summary {
            n,
            mean,
            stddev: var.sqrt(),
            min: data.iter().copied().fold(f64::INFINITY, f64::min),
            median: quantile(data, 0.5),
            max: data.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// The `p`-quantile of a sample (linear interpolation between order
/// statistics, like numpy's default).
///
/// # Examples
///
/// ```
/// use biaslab_core::stats::quantile;
///
/// let data = [4.0, 1.0, 3.0, 2.0];
/// assert_eq!(quantile(&data, 0.0), 1.0);
/// assert_eq!(quantile(&data, 0.5), 2.5);
/// assert_eq!(quantile(&data, 1.0), 4.0);
/// ```
///
/// # Panics
///
/// Panics if `data` is empty or `p` is outside `[0, 1]`.
#[must_use]
pub fn quantile(data: &[f64], p: f64) -> f64 {
    assert!(!data.is_empty());
    assert!((0.0..=1.0).contains(&p), "quantile {p} outside [0,1]");
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let idx = p * (sorted.len() - 1) as f64;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = idx - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Geometric mean — the conventional aggregate for speedup ratios.
///
/// # Examples
///
/// ```
/// use biaslab_core::stats::geometric_mean;
///
/// // A 2x speedup and a 2x slowdown cancel exactly.
/// assert!((geometric_mean(&[2.0, 0.5]) - 1.0).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if `data` is empty or any value is non-positive.
#[must_use]
pub fn geometric_mean(data: &[f64]) -> f64 {
    assert!(!data.is_empty());
    assert!(
        data.iter().all(|&x| x > 0.0),
        "geometric mean needs positive data"
    );
    (data.iter().map(|x| x.ln()).sum::<f64>() / data.len() as f64).exp()
}

/// Ranks a sample (1-based), assigning tied values their average rank.
fn average_ranks(data: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..data.len()).collect();
    idx.sort_by(|&a, &b| data[a].partial_cmp(&data[b]).expect("no NaN"));
    let mut ranks = vec![0.0; data.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && data[idx[j + 1]] == data[idx[i]] {
            j += 1;
        }
        // Positions i..=j (0-based) share the average 1-based rank.
        let rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = rank;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman rank correlation between two paired samples: Pearson
/// correlation of the (tie-averaged) ranks. Returns a value in
/// `[-1, 1]`; `0.0` when either sample is constant (no ordering to
/// correlate with).
///
/// # Examples
///
/// ```
/// use biaslab_core::stats::spearman;
///
/// let a = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(spearman(&a, &[10.0, 20.0, 30.0, 40.0]), 1.0);
/// assert_eq!(spearman(&a, &[9.0, 6.0, 4.0, 1.0]), -1.0);
/// ```
///
/// # Panics
///
/// Panics if the samples differ in length, have fewer than two
/// elements, or contain NaN.
#[must_use]
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "samples must be paired");
    assert!(a.len() >= 2, "need at least two pairs");
    assert!(
        a.iter().chain(b).all(|x| !x.is_nan()),
        "sample contains NaN"
    );
    let ra = average_ranks(a);
    let rb = average_ranks(b);
    let n = ra.len() as f64;
    let ma = ra.iter().sum::<f64>() / n;
    let mb = rb.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in ra.iter().zip(&rb) {
        cov += (x - ma) * (y - mb);
        va += (x - ma).powi(2);
        vb += (y - mb).powi(2);
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    // `(va * vb).sqrt()`, not `va.sqrt() * vb.sqrt()`: when the rank
    // vectors match exactly the former divides out to exactly ±1.
    cov / (va * vb).sqrt()
}

/// A two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ci {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Confidence level, e.g. `0.95`.
    pub confidence: f64,
}

impl Ci {
    /// Whether the interval contains `x`.
    #[must_use]
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Interval width.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Bootstrap percentile confidence interval for the mean.
///
/// # Examples
///
/// ```
/// use biaslab_core::stats::bootstrap_ci_mean;
///
/// let data: Vec<f64> = (0..40).map(|i| 1.0 + 0.01 * (i % 5) as f64).collect();
/// let ci = bootstrap_ci_mean(&data, 0.95, 1000, 42);
/// assert!(ci.lo <= 1.02 && 1.02 <= ci.hi);
/// ```
///
/// # Panics
///
/// Panics if `data` is empty, `resamples == 0`, or `confidence` is outside
/// `(0, 1)`.
#[must_use]
pub fn bootstrap_ci_mean(data: &[f64], confidence: f64, resamples: usize, seed: u64) -> Ci {
    assert!(!data.is_empty());
    assert!(resamples > 0);
    assert!(confidence > 0.0 && confidence < 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = data.len();
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut sum = 0.0;
        for _ in 0..n {
            sum += data[rng.gen_range(0..n)];
        }
        means.push(sum / n as f64);
    }
    let alpha = (1.0 - confidence) / 2.0;
    Ci {
        lo: quantile(&means, alpha),
        hi: quantile(&means, 1.0 - alpha),
        confidence,
    }
}

/// Two-sample permutation test for a difference in means. Returns the
/// two-sided p-value estimated from `permutations` random relabelings.
///
/// # Examples
///
/// ```
/// use biaslab_core::stats::permutation_test;
///
/// let fast = [100.0, 101.0, 99.0, 100.5];
/// let slow = [110.0, 111.0, 109.0, 110.5];
/// assert!(permutation_test(&fast, &slow, 200, 7) < 0.05);
/// ```
///
/// # Panics
///
/// Panics if either sample is empty or `permutations == 0`.
#[must_use]
pub fn permutation_test(a: &[f64], b: &[f64], permutations: usize, seed: u64) -> f64 {
    assert!(!a.is_empty() && !b.is_empty());
    assert!(permutations > 0);
    let observed = (Summary::of(a).mean - Summary::of(b).mean).abs();
    let mut pool: Vec<f64> = a.iter().chain(b).copied().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut at_least = 0usize;
    for _ in 0..permutations {
        // Partial Fisher–Yates: shuffle the first |a| into place.
        for i in 0..a.len() {
            let j = rng.gen_range(i..pool.len());
            pool.swap(i, j);
        }
        let ma = pool[..a.len()].iter().sum::<f64>() / a.len() as f64;
        let mb = pool[a.len()..].iter().sum::<f64>() / b.len() as f64;
        if (ma - mb).abs() >= observed {
            at_least += 1;
        }
    }
    (at_least + 1) as f64 / (permutations + 1) as f64
}

/// A violin-plot summary: the quantiles the repro figures print for each
/// benchmark's distribution of speedups across setups.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ViolinSummary {
    /// Quantile levels, fixed at 0, 5, 25, 50, 75, 95, 100 percent.
    pub levels: [f64; 7],
    /// The sample quantile at each level.
    pub values: [f64; 7],
}

impl ViolinSummary {
    /// The quantile levels used.
    pub const LEVELS: [f64; 7] = [0.0, 0.05, 0.25, 0.50, 0.75, 0.95, 1.0];

    /// Summarizes a sample.
    ///
    /// # Examples
    ///
    /// ```
    /// use biaslab_core::stats::ViolinSummary;
    ///
    /// let v = ViolinSummary::of(&[0.99, 1.00, 1.01, 1.02]);
    /// assert!(v.straddles(1.005));
    /// assert_eq!(v.min(), 0.99);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    #[must_use]
    pub fn of(data: &[f64]) -> ViolinSummary {
        let mut values = [0.0; 7];
        for (v, &p) in values.iter_mut().zip(&Self::LEVELS) {
            *v = quantile(data, p);
        }
        ViolinSummary {
            levels: Self::LEVELS,
            values,
        }
    }

    /// Minimum (0th percentile).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.values[0]
    }

    /// Median.
    #[must_use]
    pub fn median(&self) -> f64 {
        self.values[3]
    }

    /// Maximum (100th percentile).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.values[6]
    }

    /// Whether the distribution straddles `x` (some values below, some
    /// above) — used to detect conclusion flips around a speedup of 1.0.
    #[must_use]
    pub fn straddles(&self, x: f64) -> bool {
        self.min() < x && x < self.max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.stddev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn single_point_summary() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let data = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&data, 0.0), 10.0);
        assert_eq!(quantile(&data, 1.0), 40.0);
        assert!((quantile(&data, 0.5) - 25.0).abs() < 1e-12);
        // Order must not matter.
        assert_eq!(
            quantile(&[40.0, 10.0, 30.0, 20.0], 0.5),
            quantile(&data, 0.5)
        );
    }

    #[test]
    fn geometric_mean_of_reciprocals_is_one() {
        let g = geometric_mean(&[2.0, 0.5, 4.0, 0.25]);
        assert!((g - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bootstrap_ci_covers_mean_and_is_deterministic() {
        let data: Vec<f64> = (0..50).map(|i| 10.0 + (i % 7) as f64).collect();
        let ci = bootstrap_ci_mean(&data, 0.95, 2000, 42);
        let mean = Summary::of(&data).mean;
        assert!(ci.contains(mean), "{ci:?} should contain {mean}");
        assert!(ci.width() > 0.0);
        assert_eq!(ci, bootstrap_ci_mean(&data, 0.95, 2000, 42));
        assert_ne!(ci, bootstrap_ci_mean(&data, 0.95, 2000, 43));
    }

    #[test]
    fn bootstrap_ci_narrows_with_sample_size() {
        let small: Vec<f64> = (0..10).map(|i| (i % 5) as f64).collect();
        let large: Vec<f64> = (0..640).map(|i| (i % 5) as f64).collect();
        let ci_s = bootstrap_ci_mean(&small, 0.95, 1000, 1);
        let ci_l = bootstrap_ci_mean(&large, 0.95, 1000, 1);
        assert!(ci_l.width() < ci_s.width());
    }

    #[test]
    fn permutation_test_detects_a_real_difference() {
        let a: Vec<f64> = (0..30).map(|i| 100.0 + (i % 3) as f64).collect();
        let b: Vec<f64> = (0..30).map(|i| 110.0 + (i % 3) as f64).collect();
        let p = permutation_test(&a, &b, 500, 7);
        assert!(p < 0.01, "clear difference should give small p, got {p}");
    }

    #[test]
    fn permutation_test_accepts_identical_distributions() {
        let a: Vec<f64> = (0..30).map(|i| (i % 10) as f64).collect();
        let b: Vec<f64> = (0..30).map(|i| ((i + 3) % 10) as f64).collect();
        let p = permutation_test(&a, &b, 500, 7);
        assert!(p > 0.05, "same distribution should give large p, got {p}");
    }

    #[test]
    fn violin_summary_orders_quantiles() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let v = ViolinSummary::of(&data);
        for w in v.values.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(v.min(), 0.0);
        assert_eq!(v.max(), 99.0);
        assert!(v.straddles(50.0));
        assert!(!v.straddles(1000.0));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_summary_panics() {
        let _ = Summary::of(&[]);
    }

    #[test]
    fn spearman_monotone_but_nonlinear_is_one() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [1.0, 8.0, 27.0, 64.0, 125.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
        assert!((spearman(&a, &[0.0, -1.0, -8.0, -27.0, -64.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties_with_average_ranks() {
        // Ties inside one sample: correlation is still defined and
        // symmetric in the arguments.
        let a = [1.0, 1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0, 7.0];
        let r = spearman(&a, &b);
        assert!((r - spearman(&b, &a)).abs() < 1e-12);
        assert!(r > 0.9 && r <= 1.0);
    }

    #[test]
    fn spearman_constant_sample_is_zero() {
        assert_eq!(spearman(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn spearman_matches_hand_computation() {
        // Classic d²-formula check (no ties): ρ = 1 − 6Σd²/(n(n²−1)).
        let a = [
            106.0, 100.0, 86.0, 101.0, 99.0, 103.0, 97.0, 113.0, 112.0, 110.0,
        ];
        let b = [7.0, 27.0, 2.0, 50.0, 28.0, 29.0, 20.0, 12.0, 6.0, 17.0];
        let r = spearman(&a, &b);
        assert!((r - (-29.0 / 165.0)).abs() < 1e-12, "got {r}");
    }

    #[test]
    #[should_panic(expected = "paired")]
    fn spearman_rejects_mismatched_lengths() {
        let _ = spearman(&[1.0, 2.0], &[1.0, 2.0, 3.0]);
    }

    // -----------------------------------------------------------------
    // Statistical self-tests: the routines above back every confidence
    // interval and p-value the repro figures print, so these check their
    // *statistical* behaviour — nominal CI coverage and null p-value
    // uniformity — over many seeded trials, not just single answers.
    // Everything is deterministic from fixed seeds.

    /// Per-trial seed derivation (SplitMix-style) so trials are
    /// decorrelated but reproducible.
    fn trial_seed(base: u64, trial: u64) -> u64 {
        (base ^ trial.wrapping_mul(0x9E37_79B9_7F4A_7C15)).wrapping_add(0x6A09_E667_F3BC_C909)
    }

    /// Fraction of `trials` in which a 95% bootstrap CI for the mean
    /// covers the distribution's true mean.
    fn bootstrap_coverage(
        draw: impl Fn(&mut StdRng, usize) -> Vec<f64>,
        true_mean: f64,
        n: usize,
        trials: usize,
        base_seed: u64,
    ) -> f64 {
        let mut covered = 0usize;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(trial_seed(base_seed, t as u64));
            let data = draw(&mut rng, n);
            let ci = bootstrap_ci_mean(&data, 0.95, 300, trial_seed(!base_seed, t as u64));
            if ci.contains(true_mean) {
                covered += 1;
            }
        }
        covered as f64 / trials as f64
    }

    fn draw_uniform_ints(rng: &mut StdRng, n: usize) -> Vec<f64> {
        (0..n).map(|_| rng.gen_range(0..10u64) as f64).collect()
    }

    fn draw_exponential(rng: &mut StdRng, n: usize) -> Vec<f64> {
        (0..n)
            .map(|_| {
                // Inverse-CDF with rate 1: mean 1, right-skewed.
                let u: f64 = rng.gen();
                -(1.0 - u).ln()
            })
            .collect()
    }

    #[test]
    fn bootstrap_ci_coverage_is_nominal_on_uniform_ints() {
        // Uniform over {0..9}: true mean 4.5. Coverage of the percentile
        // bootstrap at 95% must land within ±3 points of nominal.
        let cov = bootstrap_coverage(draw_uniform_ints, 4.5, 30, 500, 0xB007_5714);
        assert!(
            (cov - 0.95).abs() <= 0.03,
            "uniform-int coverage {cov:.3} outside 0.95 ± 0.03"
        );
    }

    #[test]
    fn bootstrap_ci_coverage_is_nominal_on_exponential() {
        // Exponential(1): true mean 1. The skew stresses the percentile
        // interval harder than any symmetric distribution does, so this
        // needs a larger n than the uniform case to reach nominal.
        let cov = bootstrap_coverage(draw_exponential, 1.0, 150, 500, 0xE4B0_0757);
        assert!(
            (cov - 0.95).abs() <= 0.03,
            "exponential coverage {cov:.3} outside 0.95 ± 0.03"
        );
    }

    #[test]
    fn permutation_p_values_are_uniform_under_the_null() {
        // Both samples from the same distribution: the p-value must be
        // (approximately) uniform on (0, 1]. Check the mean and the
        // empirical CDF at several quantiles over 500 seeded trials.
        const TRIALS: usize = 500;
        const PERMS: usize = 200;
        let mut ps = Vec::with_capacity(TRIALS);
        for t in 0..TRIALS {
            let mut rng = StdRng::seed_from_u64(trial_seed(0x0A11_5AFE, t as u64));
            let a: Vec<f64> = (0..12).map(|_| rng.gen::<f64>()).collect();
            let b: Vec<f64> = (0..12).map(|_| rng.gen::<f64>()).collect();
            ps.push(permutation_test(
                &a,
                &b,
                PERMS,
                trial_seed(0x5EED_CAFE, t as u64),
            ));
        }
        // The (k+1)/(N+1) estimator is supported on {1/(N+1), …, 1}.
        let floor = 1.0 / (PERMS + 1) as f64;
        assert!(ps.iter().all(|&p| (floor..=1.0).contains(&p)));
        let mean = Summary::of(&ps).mean;
        assert!(
            (mean - 0.5).abs() <= 0.04,
            "null p-values should average ~0.5, got {mean:.3}"
        );
        for q in [0.05, 0.10, 0.25, 0.50, 0.75] {
            let frac = ps.iter().filter(|&&p| p <= q).count() as f64 / TRIALS as f64;
            assert!(
                (frac - q).abs() <= 0.05,
                "P(p <= {q}) should be ~{q}, got {frac:.3}"
            );
        }
    }

    #[test]
    fn permutation_test_rejection_rate_matches_its_level() {
        // Complementary view: rejecting at α = 0.05 on null data must
        // happen about 5% of the time (within 3 points over 500 trials —
        // the estimator is slightly conservative by construction).
        const TRIALS: usize = 500;
        let mut rejections = 0usize;
        for t in 0..TRIALS {
            let mut rng = StdRng::seed_from_u64(trial_seed(0xA1FA_0005, t as u64));
            let a = draw_uniform_ints(&mut rng, 15);
            let b = draw_uniform_ints(&mut rng, 15);
            if permutation_test(&a, &b, 200, trial_seed(0x0B57_AC1E, t as u64)) <= 0.05 {
                rejections += 1;
            }
        }
        let rate = rejections as f64 / TRIALS as f64;
        assert!(
            rate <= 0.08,
            "false-positive rate {rate:.3} exceeds α + 3 points"
        );
        assert!(rate >= 0.01, "rejection rate {rate:.3} implausibly low");
    }
}
