//! The measurement harness: compile → link → load → simulate, with result
//! verification and caching.
//!
//! Every measurement is **verified**: the run's checksum and return value
//! must match the IR interpreter's reference outcome, so an experiment can
//! never silently measure a miscompiled program. Compilation is cached per
//! optimization level and linking per (level, order, offset), since sweeps
//! re-measure the same binary under hundreds of environments.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

use biaslab_toolchain::codegen;
use biaslab_toolchain::link::{Executable, LinkError, Linker};
use biaslab_toolchain::load::{LoadError, Loader};
use biaslab_toolchain::opt;
use biaslab_toolchain::OptLevel;
use biaslab_uarch::{Counters, Machine, RunError};
use biaslab_workloads::{Benchmark, InputSize};
use parking_lot::Mutex;

use crate::setup::ExperimentSetup;
use crate::telemetry;

/// One verified measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Human-readable setup summary (see [`ExperimentSetup::summary`]).
    pub setup: String,
    /// Event counters from the run.
    pub counters: Counters,
    /// The run's checksum (already verified against the reference).
    pub checksum: u64,
}

impl Measurement {
    /// Simulated cycles — the headline metric.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.counters.cycles
    }
}

/// Whether repeated measurements reuse microarchitectural state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePolicy {
    /// Every repetition starts on a cold machine (the harness default):
    /// repetitions are bit-identical, because the simulator is
    /// deterministic.
    Cold,
    /// Repetitions share one machine: the first run warms the caches and
    /// predictors for the rest — the "discard the first iteration"
    /// methodology debate, reproducible on demand.
    Warm,
}

/// Measurement failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeasureError {
    /// Linking failed (bad order, oversized segment, …).
    Link(LinkError),
    /// Loading failed (oversized environment, …).
    Load(LoadError),
    /// The simulation aborted.
    Run(RunError),
    /// The run finished but its checksum or return value disagreed with
    /// the reference interpreter — a toolchain bug, never a valid result.
    WrongResult {
        /// Expected (reference) checksum.
        expected: u64,
        /// Actual checksum.
        actual: u64,
    },
    /// The per-measurement watchdog tripped: the simulation exhausted its
    /// instruction budget (a runaway — an infinite loop in generated code,
    /// or an injected `measure.runaway` fault). The orchestrator retries a
    /// tripped measurement once, then quarantines the key (the error is
    /// cached, so re-requests fail fast instead of running away again).
    Watchdog {
        /// The exhausted instruction budget.
        limit: u64,
    },
}

impl fmt::Display for MeasureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeasureError::Link(e) => write!(f, "link: {e}"),
            MeasureError::Load(e) => write!(f, "load: {e}"),
            MeasureError::Run(e) => write!(f, "run: {e}"),
            MeasureError::WrongResult { expected, actual } => write!(
                f,
                "verification failed: checksum {actual:#x}, reference {expected:#x}"
            ),
            MeasureError::Watchdog { limit } => write!(
                f,
                "watchdog: simulation exceeded its {limit}-instruction budget"
            ),
        }
    }
}

impl std::error::Error for MeasureError {}

impl From<LinkError> for MeasureError {
    fn from(e: LinkError) -> Self {
        MeasureError::Link(e)
    }
}

impl From<LoadError> for MeasureError {
    fn from(e: LoadError) -> Self {
        MeasureError::Load(e)
    }
}

impl From<RunError> for MeasureError {
    fn from(e: RunError) -> Self {
        MeasureError::Run(e)
    }
}

type LinkKey = (OptLevel, Vec<usize>, u32);
/// A once-initialized link outcome; see the `linked` field.
type LinkCell = Arc<OnceLock<Result<Arc<Executable>, LinkError>>>;

/// A measurement harness for one benchmark.
///
/// # Examples
///
/// ```
/// use biaslab_core::harness::Harness;
/// use biaslab_core::setup::ExperimentSetup;
/// use biaslab_toolchain::OptLevel;
/// use biaslab_uarch::MachineConfig;
/// use biaslab_workloads::{benchmark_by_name, InputSize};
///
/// let harness = Harness::new(benchmark_by_name("hmmer").expect("known benchmark"));
/// let setup = ExperimentSetup::default_on(MachineConfig::core2(), OptLevel::O2);
/// let m = harness.measure(&setup, InputSize::Test)?;
/// assert!(m.cycles() > 0);
/// # Ok::<(), biaslab_core::harness::MeasureError>(())
/// ```
#[derive(Debug)]
pub struct Harness {
    bench: Benchmark,
    compiled: Mutex<HashMap<OptLevel, Arc<biaslab_toolchain::obj::CompiledModule>>>,
    // Each entry is a once-cell so concurrent first requests for the same
    // (level, order, offset) link exactly once: the map lock is held only to
    // fetch the cell, never across the link itself.
    linked: Mutex<HashMap<LinkKey, LinkCell>>,
}

impl Harness {
    /// Creates a harness around a benchmark.
    #[must_use]
    pub fn new(bench: Benchmark) -> Harness {
        Harness {
            bench,
            compiled: Mutex::new(HashMap::new()),
            linked: Mutex::new(HashMap::new()),
        }
    }

    /// The benchmark under measurement.
    #[must_use]
    pub fn benchmark(&self) -> &Benchmark {
        &self.bench
    }

    /// The (cached) compiled module at an optimization level.
    #[must_use]
    pub fn compiled(&self, level: OptLevel) -> Arc<biaslab_toolchain::obj::CompiledModule> {
        let mut cache = self.compiled.lock();
        cache
            .entry(level)
            .or_insert_with(|| {
                let optimized = opt::optimize(self.bench.module(), level);
                Arc::new(codegen::compile(&optimized, level))
            })
            .clone()
    }

    /// The object symbol names, in declaration order (what
    /// [`crate::setup::LinkOrder::resolve`] permutes).
    #[must_use]
    pub fn object_names(&self) -> Vec<String> {
        self.bench
            .module()
            .functions
            .iter()
            .map(|f| f.name.clone())
            .collect()
    }

    /// The (cached) executable for a level, explicit object order and text
    /// offset.
    ///
    /// # Errors
    ///
    /// Propagates [`LinkError`]s.
    pub fn executable(
        &self,
        level: OptLevel,
        order: &[usize],
        text_offset: u32,
    ) -> Result<Arc<Executable>, LinkError> {
        let key = (level, order.to_vec(), text_offset);
        let cell = self.linked.lock().entry(key).or_default().clone();
        cell.get_or_init(|| {
            let cm = self.compiled(level);
            Linker::new()
                .object_order(order.to_vec())
                .text_offset(text_offset)
                .link(&cm, self.bench.entry())
                .map(Arc::new)
        })
        .clone()
    }

    /// Takes one verified measurement under `setup`.
    ///
    /// With [`telemetry`] enabled the same stages run wrapped in phase
    /// spans (compile → link → load → run → stat); the dispatch is one
    /// relaxed atomic load, so with telemetry off this compiles to the
    /// pre-telemetry code path and counters stay bit-identical.
    ///
    /// The machine is built fresh per measurement (cold state) in the
    /// default kernel mode, so the `BIASLAB_KERNEL` environment variable
    /// selects the execution path process-wide: `collapsed` (what Auto
    /// picks for the paper machines) or `event` (the full scheduler, with
    /// bit-identical counters — the CI kernel smoke compares the two).
    ///
    /// # Errors
    ///
    /// Returns a [`MeasureError`] if any stage fails or the result does not
    /// match the reference outcome.
    pub fn measure(
        &self,
        setup: &ExperimentSetup,
        size: InputSize,
    ) -> Result<Measurement, MeasureError> {
        if crate::faults::active() {
            crate::faults::delay(crate::faults::site::MEASURE_DELAY);
        }
        if telemetry::enabled() {
            return self.measure_traced(setup, size);
        }
        let names = self.object_names();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let order = setup.link_order.resolve(&name_refs);
        let exe = self.executable(setup.opt, &order, setup.text_offset)?;
        let process = Loader::new().stack_shift(setup.stack_shift).load(
            &exe,
            &setup.env,
            self.bench.args(size),
        )?;
        let mut machine = Machine::new(setup.machine.clone());
        let result = machine.run(&exe, process)?;
        Self::export_block_stats(&machine);

        let expected = self.bench.expected(size);
        if result.checksum != expected.checksum || result.return_value != expected.return_value {
            return Err(MeasureError::WrongResult {
                expected: expected.checksum,
                actual: result.checksum,
            });
        }
        Ok(Measurement {
            setup: setup.summary(),
            counters: result.counters,
            checksum: result.checksum,
        })
    }

    /// [`Harness::measure`] with phase spans. The stages, their order and
    /// the simulator configuration are exactly those of the untraced path
    /// (only `machine.run` may become `machine.run_profiled`, which the
    /// PR-2 invariant guarantees produces identical counters), so tracing
    /// can never change a measurement.
    fn measure_traced(
        &self,
        setup: &ExperimentSetup,
        size: InputSize,
    ) -> Result<Measurement, MeasureError> {
        let bench = self.bench.name();
        // Attach under the orchestrator's request span when one is open on
        // this thread; open our own "measure" parent for direct callers.
        let own = (telemetry::current_span() == 0).then(|| telemetry::Span::open("measure", bench));

        let r = (|| {
            let span = telemetry::Span::open("compile", bench);
            let _ = self.compiled(setup.opt);
            let names = self.object_names();
            let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
            let order = setup.link_order.resolve(&name_refs);
            span.close();

            let span = telemetry::Span::open("link", bench);
            let exe = self.executable(setup.opt, &order, setup.text_offset);
            span.close();
            let exe = exe?;

            let span = telemetry::Span::open("load", bench);
            let process = Loader::new().stack_shift(setup.stack_shift).load(
                &exe,
                &setup.env,
                self.bench.args(size),
            );
            span.close();
            let process = process?;

            let span = telemetry::Span::open("run", bench);
            let run_span = span.id();
            let mut machine = Machine::new(setup.machine.clone());
            let result = if telemetry::profiles_enabled() {
                machine
                    .run_profiled(&exe, process)
                    .map(|(result, profile)| {
                        telemetry::emit_profile(run_span, bench, &profile);
                        result
                    })
            } else {
                machine.run(&exe, process)
            };
            span.close();
            let result = result?;
            Self::export_block_stats(&machine);

            let span = telemetry::Span::open("stat", bench);
            let expected = self.bench.expected(size);
            let out = if result.checksum != expected.checksum
                || result.return_value != expected.return_value
            {
                Err(MeasureError::WrongResult {
                    expected: expected.checksum,
                    actual: result.checksum,
                })
            } else {
                Ok(Measurement {
                    setup: setup.summary(),
                    counters: result.counters,
                    checksum: result.checksum,
                })
            };
            span.close();
            out
        })();

        if let Some(span) = own {
            span.close();
        }
        r
    }

    /// Takes `reps` measurements under one setup, cold or warm (see
    /// [`CachePolicy`]). Every repetition is verified.
    ///
    /// # Errors
    ///
    /// Returns the first [`MeasureError`] encountered.
    ///
    /// # Panics
    ///
    /// Panics if `reps == 0`.
    pub fn measure_repeated(
        &self,
        setup: &ExperimentSetup,
        size: InputSize,
        reps: usize,
        policy: CachePolicy,
    ) -> Result<Vec<Measurement>, MeasureError> {
        assert!(reps > 0, "at least one repetition");
        let names = self.object_names();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let order = setup.link_order.resolve(&name_refs);
        let exe = self.executable(setup.opt, &order, setup.text_offset)?;
        let expected = self.bench.expected(size);

        let mut machine = Machine::new(setup.machine.clone());
        let mut out = Vec::with_capacity(reps);
        for _ in 0..reps {
            if policy == CachePolicy::Cold {
                machine.reset();
            }
            let process = Loader::new().stack_shift(setup.stack_shift).load(
                &exe,
                &setup.env,
                self.bench.args(size),
            )?;
            let result = machine.run(&exe, process)?;
            if result.checksum != expected.checksum || result.return_value != expected.return_value
            {
                return Err(MeasureError::WrongResult {
                    expected: expected.checksum,
                    actual: result.checksum,
                });
            }
            out.push(Measurement {
                setup: setup.summary(),
                counters: result.counters,
                checksum: result.checksum,
            });
        }
        // The machine (and so its block cache) lives across repetitions;
        // one export covers the whole series.
        Self::export_block_stats(&machine);
        Ok(out)
    }

    /// Accumulates one machine's block-cache stats into the process-wide
    /// [`telemetry::metrics`] registry (`uarch.blockcache.*`). Machines
    /// that never dispatched a block — the collapsed and event kernels —
    /// contribute nothing, so the metrics only appear when block dispatch
    /// actually ran. A handful of relaxed atomics per *measurement* (not
    /// per instruction), so the hot path never sees it.
    fn export_block_stats(machine: &Machine) {
        let stats = machine.block_stats();
        if stats.hits + stats.misses == 0 {
            return;
        }
        let m = telemetry::metrics();
        m.counter("uarch.blockcache.hit").add(stats.hits);
        m.counter("uarch.blockcache.miss").add(stats.misses);
        m.counter("uarch.blockcache.invalidate")
            .add(stats.invalidations);
        m.counter("uarch.blockcache.blocks_live")
            .record_max(machine.blocks_live() as u64);
    }

    /// Measures many setups in parallel, preserving order.
    ///
    /// Results are per-setup so one failing setup does not poison a sweep.
    #[must_use]
    pub fn measure_sweep(
        &self,
        setups: &[ExperimentSetup],
        size: InputSize,
    ) -> Vec<Result<Measurement, MeasureError>> {
        // Pre-warm caches (compile + expected) serially to avoid duplicate
        // work racing in the workers.
        for s in setups {
            let _ = self.compiled(s.opt);
        }
        let _ = self.bench.expected(size);

        let threads = std::thread::available_parallelism()
            .map_or(4, |n| n.get())
            .min(16);
        let n = setups.len();
        let results: Vec<Mutex<Option<Result<Measurement, MeasureError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        crossbeam::scope(|scope| {
            for _ in 0..threads.min(n.max(1)) {
                scope.spawn(|_| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = self.measure(&setups[i], size);
                    *results[i].lock() = Some(r);
                });
            }
        })
        .expect("sweep worker panicked");
        results
            .into_iter()
            .map(|m| m.into_inner().expect("every index visited"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use biaslab_toolchain::load::Environment;
    use biaslab_uarch::MachineConfig;
    use biaslab_workloads::benchmark_by_name;

    use super::*;
    use crate::setup::LinkOrder;

    fn harness(name: &str) -> Harness {
        Harness::new(benchmark_by_name(name).expect("known benchmark"))
    }

    #[test]
    fn measurement_verifies_against_reference() {
        let h = harness("hmmer");
        for level in OptLevel::ALL {
            let setup = ExperimentSetup::default_on(MachineConfig::core2(), level);
            let m = h
                .measure(&setup, InputSize::Test)
                .unwrap_or_else(|e| panic!("{level}: {e}"));
            assert!(m.cycles() > 0);
        }
    }

    #[test]
    fn caches_are_reused() {
        let h = harness("milc");
        let a = h.compiled(OptLevel::O2);
        let b = h.compiled(OptLevel::O2);
        assert!(Arc::ptr_eq(&a, &b));
        let order: Vec<usize> = (0..h.object_names().len()).collect();
        let e1 = h.executable(OptLevel::O2, &order, 0).unwrap();
        let e2 = h.executable(OptLevel::O2, &order, 0).unwrap();
        assert!(Arc::ptr_eq(&e1, &e2));
    }

    #[test]
    fn concurrent_executable_requests_link_once_and_share() {
        let h = harness("hmmer");
        let order: Vec<usize> = (0..h.object_names().len()).collect();
        let exes: Vec<Arc<Executable>> = crossbeam::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|_| h.executable(OptLevel::O2, &order, 0).unwrap()))
                .collect();
            handles.into_iter().map(|j| j.join().unwrap()).collect()
        })
        .unwrap();
        // With the old check-then-link cache, racing requests each linked a
        // private executable; the once-cell guarantees a single shared one.
        assert!(exes.windows(2).all(|w| Arc::ptr_eq(&w[0], &w[1])));
    }

    #[test]
    fn environment_does_not_change_the_verified_result() {
        let h = harness("sphinx3");
        let base = ExperimentSetup::default_on(MachineConfig::o3cpu(), OptLevel::O2);
        let m1 = h.measure(&base, InputSize::Test).unwrap();
        let m2 = h
            .measure(
                &base.with_env(Environment::of_total_size(1000)),
                InputSize::Test,
            )
            .unwrap();
        assert_eq!(m1.checksum, m2.checksum);
        assert_eq!(m1.counters.instructions, m2.counters.instructions);
    }

    #[test]
    fn link_order_does_not_change_the_verified_result() {
        let h = harness("milc");
        let base = ExperimentSetup::default_on(MachineConfig::core2(), OptLevel::O3);
        let m1 = h.measure(&base, InputSize::Test).unwrap();
        let m2 = h
            .measure(
                &base.with_link_order(LinkOrder::Random(11)),
                InputSize::Test,
            )
            .unwrap();
        assert_eq!(m1.checksum, m2.checksum);
    }

    #[test]
    fn cold_repetitions_are_identical_and_warm_ones_are_faster() {
        let h = harness("milc");
        let setup = ExperimentSetup::default_on(MachineConfig::core2(), OptLevel::O2);
        let cold = h
            .measure_repeated(&setup, InputSize::Test, 3, CachePolicy::Cold)
            .unwrap();
        assert!(cold.windows(2).all(|w| w[0].counters == w[1].counters));
        let warm = h
            .measure_repeated(&setup, InputSize::Test, 3, CachePolicy::Warm)
            .unwrap();
        assert_eq!(
            warm[0].counters, cold[0].counters,
            "first warm rep is a cold run"
        );
        assert!(
            warm[1].counters.cycles < warm[0].counters.cycles,
            "warm caches must help: {} vs {}",
            warm[1].counters.cycles,
            warm[0].counters.cycles
        );
        assert_eq!(
            warm[1].checksum, warm[0].checksum,
            "warmth never changes results"
        );
    }

    #[test]
    fn sweep_returns_one_result_per_setup() {
        let h = harness("hmmer");
        let base = ExperimentSetup::default_on(MachineConfig::core2(), OptLevel::O2);
        let setups: Vec<_> = (0..6)
            .map(|i| base.with_env(Environment::of_total_size(64 * i + 64)))
            .collect();
        let results = h.measure_sweep(&setups, InputSize::Test);
        assert_eq!(results.len(), 6);
        for r in results {
            r.unwrap();
        }
    }
}
