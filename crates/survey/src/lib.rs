//! # biaslab-survey — the 133-paper literature survey
//!
//! The paper surveys 133 recent papers from ASPLOS, PACT, PLDI and CGO and
//! finds that **none** report — let alone control for — the two setup
//! properties shown to bias measurements (UNIX environment size and link
//! order), and that only a minority evaluate more than one experimental
//! setup or report any statistical treatment.
//!
//! The original publishes only aggregate counts; this crate encodes a
//! record-level corpus *synthesized to match those aggregates* (documented
//! in `DESIGN.md` and `EXPERIMENTS.md` as a substitution), plus the
//! tabulation code that regenerates the survey table from the records.
//! Regenerating from records rather than hard-coding the table keeps the
//! pipeline honest: the table is computed, and property tests check the
//! corpus invariants (exactly 133 papers, zero env-size/link-order
//! reporters, per-venue counts).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corpus;
mod tabulate;

pub use corpus::{corpus, PaperRecord, ReportedAspect, Venue, CORPUS_SIZE};
pub use tabulate::{tabulate, SurveyRow, SurveyTable};
