//! The synthesized record-level corpus.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Total papers in the survey (the paper's number).
pub const CORPUS_SIZE: usize = 133;

/// The four surveyed venues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Venue {
    /// Architectural Support for Programming Languages and Operating Systems.
    Asplos,
    /// Parallel Architectures and Compilation Techniques.
    Pact,
    /// Programming Language Design and Implementation.
    Pldi,
    /// Code Generation and Optimization.
    Cgo,
}

impl Venue {
    /// All venues, in the paper's order.
    pub const ALL: [Venue; 4] = [Venue::Asplos, Venue::Pact, Venue::Pldi, Venue::Cgo];

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Venue::Asplos => "ASPLOS",
            Venue::Pact => "PACT",
            Venue::Pldi => "PLDI",
            Venue::Cgo => "CGO",
        }
    }

    /// Papers surveyed at this venue (sums to [`CORPUS_SIZE`]).
    #[must_use]
    pub fn paper_count(self) -> usize {
        match self {
            Venue::Asplos => 35,
            Venue::Pact => 30,
            Venue::Pldi => 38,
            Venue::Cgo => 30,
        }
    }
}

/// One aspect of an experimental setup a paper may document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReportedAspect {
    /// Names the compiler used.
    Compiler,
    /// Gives the exact compiler version and flags.
    CompilerFlags,
    /// Names the operating system.
    Os,
    /// Identifies the hardware model.
    Hardware,
    /// States physical memory size.
    MemorySize,
    /// Lists the benchmarks.
    Benchmarks,
    /// Identifies benchmark input sets.
    InputSets,
    /// States the UNIX environment contents or size. **The paper found 0.**
    EnvironmentSize,
    /// States the link order of the binaries. **The paper found 0.**
    LinkOrder,
    /// Evaluates more than one experimental setup.
    MultipleSetups,
    /// Reports confidence intervals or another statistical treatment.
    Statistics,
}

impl ReportedAspect {
    /// Every aspect, in table order.
    pub const ALL: [ReportedAspect; 11] = [
        ReportedAspect::Benchmarks,
        ReportedAspect::Hardware,
        ReportedAspect::Compiler,
        ReportedAspect::CompilerFlags,
        ReportedAspect::InputSets,
        ReportedAspect::Os,
        ReportedAspect::MemorySize,
        ReportedAspect::Statistics,
        ReportedAspect::MultipleSetups,
        ReportedAspect::EnvironmentSize,
        ReportedAspect::LinkOrder,
    ];

    /// Display label for table rendering.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ReportedAspect::Compiler => "compiler named",
            ReportedAspect::CompilerFlags => "compiler version+flags",
            ReportedAspect::Os => "operating system",
            ReportedAspect::Hardware => "hardware model",
            ReportedAspect::MemorySize => "memory size",
            ReportedAspect::Benchmarks => "benchmarks listed",
            ReportedAspect::InputSets => "input sets",
            ReportedAspect::EnvironmentSize => "environment size",
            ReportedAspect::LinkOrder => "link order",
            ReportedAspect::MultipleSetups => ">1 experimental setup",
            ReportedAspect::Statistics => "confidence intervals",
        }
    }

    /// The fraction of the corpus reporting this aspect — the synthesis
    /// target. Environment size and link order are exactly zero (the
    /// paper's headline finding); the rest are plausible shares documented
    /// as synthetic in `DESIGN.md`.
    #[must_use]
    pub fn target_fraction(self) -> f64 {
        match self {
            ReportedAspect::Compiler => 0.71,
            ReportedAspect::CompilerFlags => 0.43,
            ReportedAspect::Os => 0.48,
            ReportedAspect::Hardware => 0.83,
            ReportedAspect::MemorySize => 0.38,
            ReportedAspect::Benchmarks => 1.0,
            ReportedAspect::InputSets => 0.55,
            ReportedAspect::EnvironmentSize | ReportedAspect::LinkOrder => 0.0,
            ReportedAspect::MultipleSetups => 0.17,
            ReportedAspect::Statistics => 0.14,
        }
    }
}

/// One surveyed paper.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PaperRecord {
    /// Synthetic identifier, stable across runs with the same seed.
    pub id: u32,
    /// Publication venue.
    pub venue: Venue,
    /// Publication year (2006–2008, "recent" relative to the paper).
    pub year: u16,
    /// The setup aspects this paper documents.
    pub reports: Vec<ReportedAspect>,
}

impl PaperRecord {
    /// Whether the paper documents a given aspect.
    #[must_use]
    pub fn reports(&self, aspect: ReportedAspect) -> bool {
        self.reports.contains(&aspect)
    }
}

/// Builds the 133-record corpus. Deterministic for a given `seed`; every
/// seed satisfies the aggregate invariants (exact per-venue counts, exact
/// per-aspect counts, zero environment-size and link-order reporters).
#[must_use]
pub fn corpus(seed: u64) -> Vec<PaperRecord> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut records: Vec<PaperRecord> = Vec::with_capacity(CORPUS_SIZE);
    let mut id = 0;
    for venue in Venue::ALL {
        for k in 0..venue.paper_count() {
            records.push(PaperRecord {
                id,
                venue,
                year: 2006 + (k % 3) as u16,
                reports: Vec::new(),
            });
            id += 1;
        }
    }
    debug_assert_eq!(records.len(), CORPUS_SIZE);

    // Assign each aspect to an exact number of randomly chosen papers.
    let mut indices: Vec<usize> = (0..CORPUS_SIZE).collect();
    for aspect in ReportedAspect::ALL {
        let count = (aspect.target_fraction() * CORPUS_SIZE as f64).round() as usize;
        indices.shuffle(&mut rng);
        for &i in indices.iter().take(count) {
            records[i].reports.push(aspect);
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_exactly_133_papers() {
        assert_eq!(corpus(0).len(), CORPUS_SIZE);
        assert_eq!(
            Venue::ALL.iter().map(|v| v.paper_count()).sum::<usize>(),
            CORPUS_SIZE
        );
    }

    #[test]
    fn nobody_reports_env_size_or_link_order() {
        for p in corpus(42) {
            assert!(
                !p.reports(ReportedAspect::EnvironmentSize),
                "paper {}",
                p.id
            );
            assert!(!p.reports(ReportedAspect::LinkOrder), "paper {}", p.id);
        }
    }

    #[test]
    fn aspect_counts_hit_targets_exactly() {
        let c = corpus(7);
        for aspect in ReportedAspect::ALL {
            let want = (aspect.target_fraction() * CORPUS_SIZE as f64).round() as usize;
            let got = c.iter().filter(|p| p.reports(aspect)).count();
            assert_eq!(got, want, "{aspect:?}");
        }
    }

    #[test]
    fn deterministic_per_seed_and_seed_sensitive() {
        assert_eq!(corpus(1), corpus(1));
        // Different seeds permute which papers report what…
        assert_ne!(corpus(1), corpus(2));
        // …but the aggregates are identical (checked above for one seed;
        // spot-check a second).
        let c2 = corpus(2);
        let bench = c2
            .iter()
            .filter(|p| p.reports(ReportedAspect::Benchmarks))
            .count();
        assert_eq!(bench, CORPUS_SIZE);
    }

    #[test]
    fn every_benchmarked_paper_lists_benchmarks() {
        // Benchmarks has target 1.0: all papers.
        for p in corpus(3) {
            assert!(p.reports(ReportedAspect::Benchmarks));
        }
    }
}
