//! Aggregation of the corpus into the paper's survey table.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::corpus::{PaperRecord, ReportedAspect, Venue};

/// One row of the survey table: an aspect and how many papers report it,
/// per venue and in total.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurveyRow {
    /// The setup aspect.
    pub aspect: ReportedAspect,
    /// Reporting papers per venue, in [`Venue::ALL`] order.
    pub per_venue: [usize; 4],
    /// Reporting papers in total.
    pub total: usize,
    /// `total` as a percentage of the corpus.
    pub percent: f64,
}

/// The tabulated survey.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurveyTable {
    /// Papers per venue, in [`Venue::ALL`] order.
    pub venue_counts: [usize; 4],
    /// Total papers.
    pub total_papers: usize,
    /// One row per aspect, in [`ReportedAspect::ALL`] order.
    pub rows: Vec<SurveyRow>,
}

impl SurveyTable {
    /// The row for a given aspect.
    #[must_use]
    pub fn row(&self, aspect: ReportedAspect) -> &SurveyRow {
        self.rows
            .iter()
            .find(|r| r.aspect == aspect)
            .expect("tabulate covers every aspect")
    }
}

/// Tabulates a corpus into the survey table.
#[must_use]
pub fn tabulate(records: &[PaperRecord]) -> SurveyTable {
    let mut venue_counts = [0usize; 4];
    for p in records {
        let vi = Venue::ALL
            .iter()
            .position(|&v| v == p.venue)
            .expect("known venue");
        venue_counts[vi] += 1;
    }
    let rows = ReportedAspect::ALL
        .iter()
        .map(|&aspect| {
            let mut per_venue = [0usize; 4];
            for p in records.iter().filter(|p| p.reports(aspect)) {
                let vi = Venue::ALL
                    .iter()
                    .position(|&v| v == p.venue)
                    .expect("known venue");
                per_venue[vi] += 1;
            }
            let total = per_venue.iter().sum();
            SurveyRow {
                aspect,
                per_venue,
                total,
                percent: 100.0 * total as f64 / records.len().max(1) as f64,
            }
        })
        .collect();
    SurveyTable {
        venue_counts,
        total_papers: records.len(),
        rows,
    }
}

impl fmt::Display for SurveyTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<24} {:>7} {:>6} {:>6} {:>6}  {:>6}  {:>6}",
            "setup aspect", "ASPLOS", "PACT", "PLDI", "CGO", "total", "%"
        )?;
        writeln!(
            f,
            "{:<24} {:>7} {:>6} {:>6} {:>6}  {:>6}  {:>6}",
            "(papers surveyed)",
            self.venue_counts[0],
            self.venue_counts[1],
            self.venue_counts[2],
            self.venue_counts[3],
            self.total_papers,
            "",
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<24} {:>7} {:>6} {:>6} {:>6}  {:>6}  {:>5.1}%",
                row.aspect.label(),
                row.per_venue[0],
                row.per_venue[1],
                row.per_venue[2],
                row.per_venue[3],
                row.total,
                row.percent,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::corpus::{corpus, CORPUS_SIZE};

    use super::*;

    #[test]
    fn table_totals_match_corpus() {
        let t = tabulate(&corpus(0));
        assert_eq!(t.total_papers, CORPUS_SIZE);
        assert_eq!(t.venue_counts.iter().sum::<usize>(), CORPUS_SIZE);
        for row in &t.rows {
            assert_eq!(row.total, row.per_venue.iter().sum::<usize>());
        }
    }

    #[test]
    fn headline_rows_are_zero() {
        let t = tabulate(&corpus(0));
        assert_eq!(t.row(ReportedAspect::EnvironmentSize).total, 0);
        assert_eq!(t.row(ReportedAspect::LinkOrder).total, 0);
    }

    #[test]
    fn rendering_contains_all_venues_and_zero_rows() {
        let text = tabulate(&corpus(0)).to_string();
        for v in ["ASPLOS", "PACT", "PLDI", "CGO"] {
            assert!(text.contains(v), "{v}");
        }
        assert!(text.contains("environment size"));
        assert!(text.contains("link order"));
        assert!(text.contains("133"));
    }

    #[test]
    fn empty_corpus_does_not_panic() {
        let t = tabulate(&[]);
        assert_eq!(t.total_papers, 0);
        assert_eq!(t.rows.len(), ReportedAspect::ALL.len());
    }
}
