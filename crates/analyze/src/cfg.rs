//! Control-flow analyses over `biaslab-toolchain` IR functions.
//!
//! The static layer of the bias analyzer: build the CFG, compute
//! dominators, find natural loops, and turn loop nesting into per-block
//! static frequency estimates. Nothing here looks at addresses — that is
//! [`crate::image`]'s job — and nothing executes: every result is a pure
//! function of the IR.
//!
//! The dominator computation is the classic iterative bitset dataflow
//! (`dom(b) = {b} ∪ ⋂ dom(preds(b))`), which is quadratic in the worst
//! case but exact, small, and easy to check against the even more naive
//! path-based definition the property tests use.

use biaslab_toolchain::ir::Function;

/// Per-loop-level frequency multiplier for static estimates. A block
/// nested `d` loops deep is assumed to run `LOOP_BASE^d` times as often
/// as the entry. The exact value is a convention (LLVM-style estimators
/// use small powers of two); what matters is that deeper nesting
/// dominates shallower nesting by a wide margin, as it does dynamically
/// in this suite.
pub const LOOP_BASE: f64 = 16.0;

/// Nesting depth beyond which frequency estimates saturate.
pub const MAX_LOOP_DEPTH: u32 = 8;

/// The control-flow graph of one function, in block-index space.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Number of blocks.
    pub n: usize,
    /// Successor block indices, per block (in terminator order).
    pub succs: Vec<Vec<usize>>,
    /// Predecessor block indices, per block (sorted).
    pub preds: Vec<Vec<usize>>,
    /// Whether each block is reachable from the entry (block 0).
    pub reachable: Vec<bool>,
}

impl Cfg {
    /// Builds the CFG of `f`. Block 0 is the entry.
    ///
    /// # Panics
    ///
    /// Panics if `f` has no blocks or a terminator targets an
    /// out-of-range block (i.e. the function does not verify).
    #[must_use]
    pub fn of(f: &Function) -> Cfg {
        assert!(!f.blocks.is_empty(), "function has no blocks");
        let n = f.blocks.len();
        let mut succs: Vec<Vec<usize>> = Vec::with_capacity(n);
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, b) in f.blocks.iter().enumerate() {
            let ss: Vec<usize> = b.term.successors().iter().map(|s| s.0 as usize).collect();
            for &s in &ss {
                assert!(s < n, "terminator targets out-of-range block");
                preds[s].push(i);
            }
            succs.push(ss);
        }
        for p in &mut preds {
            p.sort_unstable();
            p.dedup();
        }
        // Reachability from the entry.
        let mut reachable = vec![false; n];
        let mut stack = vec![0usize];
        reachable[0] = true;
        while let Some(b) = stack.pop() {
            for &s in &succs[b] {
                if !reachable[s] {
                    reachable[s] = true;
                    stack.push(s);
                }
            }
        }
        Cfg {
            n,
            succs,
            preds,
            reachable,
        }
    }
}

/// Bitset over block indices: one `u64` word per 64 blocks.
type BitRow = Vec<u64>;

fn row_full(words: usize) -> BitRow {
    vec![u64::MAX; words]
}

fn row_get(row: &[u64], i: usize) -> bool {
    row[i / 64] >> (i % 64) & 1 == 1
}

fn row_set(row: &mut [u64], i: usize) {
    row[i / 64] |= 1 << (i % 64);
}

/// Dominator sets for every reachable block of a CFG.
#[derive(Debug, Clone)]
pub struct Dominators {
    n: usize,
    reachable: Vec<bool>,
    dom: Vec<BitRow>,
}

impl Dominators {
    /// Computes dominators by iterative bitset dataflow.
    #[must_use]
    pub fn of(cfg: &Cfg) -> Dominators {
        let n = cfg.n;
        let words = n.div_ceil(64);
        let mut dom: Vec<BitRow> = vec![row_full(words); n];
        dom[0] = vec![0; words];
        row_set(&mut dom[0], 0);
        let mut changed = true;
        while changed {
            changed = false;
            for b in 1..n {
                if !cfg.reachable[b] {
                    continue;
                }
                let mut next = row_full(words);
                for &p in &cfg.preds[b] {
                    if cfg.reachable[p] {
                        for (w, pw) in next.iter_mut().zip(&dom[p]) {
                            *w &= pw;
                        }
                    }
                }
                row_set(&mut next, b);
                if next != dom[b] {
                    dom[b] = next;
                    changed = true;
                }
            }
        }
        Dominators {
            n,
            reachable: cfg.reachable.clone(),
            dom,
        }
    }

    /// Whether block `d` dominates block `b`. Unreachable blocks dominate
    /// nothing and are dominated by nothing (including themselves).
    #[must_use]
    pub fn dominates(&self, d: usize, b: usize) -> bool {
        assert!(d < self.n && b < self.n, "block index out of range");
        self.reachable[d] && self.reachable[b] && row_get(&self.dom[b], d)
    }

    /// The immediate dominator of `b`: the unique strict dominator
    /// dominated by every other strict dominator. `None` for the entry
    /// and for unreachable blocks.
    #[must_use]
    pub fn idom(&self, b: usize) -> Option<usize> {
        if b == 0 || !self.reachable[b] {
            return None;
        }
        // Among strict dominators of `b`, the immediate one has the
        // largest dominator set (the strict dominators form a chain).
        (0..self.n)
            .filter(|&d| d != b && row_get(&self.dom[b], d))
            .max_by_key(|&d| {
                self.dom[d]
                    .iter()
                    .map(|w| w.count_ones() as usize)
                    .sum::<usize>()
            })
    }
}

/// One natural loop: a header plus every block that can reach a back
/// edge without leaving through the header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header (dominates every block in the loop).
    pub header: usize,
    /// Source blocks of the back edges into `header`, sorted.
    pub back_edges: Vec<usize>,
    /// Every block in the loop, sorted, including the header.
    pub blocks: Vec<usize>,
}

/// Finds every natural loop of `cfg`: back edges `a → h` with `h`
/// dominating `a`, grouped by header (loops sharing a header are merged,
/// the usual convention). Returned sorted by header index.
#[must_use]
pub fn natural_loops(cfg: &Cfg, dom: &Dominators) -> Vec<NaturalLoop> {
    let mut loops: Vec<NaturalLoop> = Vec::new();
    for a in 0..cfg.n {
        if !cfg.reachable[a] {
            continue;
        }
        for &h in &cfg.succs[a] {
            if !dom.dominates(h, a) {
                continue;
            }
            // Natural loop body: h, plus everything that reaches `a`
            // backwards without passing through h.
            let mut body = vec![false; cfg.n];
            body[h] = true;
            let mut stack = vec![a];
            while let Some(x) = stack.pop() {
                if body[x] {
                    continue;
                }
                body[x] = true;
                for &p in &cfg.preds[x] {
                    if cfg.reachable[p] {
                        stack.push(p);
                    }
                }
            }
            let blocks: Vec<usize> = (0..cfg.n).filter(|&b| body[b]).collect();
            if let Some(existing) = loops.iter_mut().find(|l| l.header == h) {
                existing.back_edges.push(a);
                let mut merged = existing.blocks.clone();
                merged.extend(&blocks);
                merged.sort_unstable();
                merged.dedup();
                existing.blocks = merged;
            } else {
                loops.push(NaturalLoop {
                    header: h,
                    back_edges: vec![a],
                    blocks,
                });
            }
        }
    }
    for l in &mut loops {
        l.back_edges.sort_unstable();
        l.back_edges.dedup();
    }
    loops.sort_by_key(|l| l.header);
    loops
}

/// Loop-nesting depth per block: the number of natural loops whose body
/// contains the block.
#[must_use]
pub fn loop_depths(n: usize, loops: &[NaturalLoop]) -> Vec<u32> {
    let mut depth = vec![0u32; n];
    for l in loops {
        for &b in &l.blocks {
            depth[b] += 1;
        }
    }
    depth
}

/// Everything the analyzer knows about one function's control flow.
#[derive(Debug, Clone)]
pub struct CfgAnalysis {
    /// The graph itself.
    pub cfg: Cfg,
    /// Natural loops, sorted by header.
    pub loops: Vec<NaturalLoop>,
    /// Loop-nesting depth per block.
    pub depth: Vec<u32>,
    /// Static frequency estimate per block: `LOOP_BASE^depth` for
    /// reachable blocks (saturating at [`MAX_LOOP_DEPTH`]), `0.0` for
    /// unreachable ones.
    pub freq: Vec<f64>,
}

impl CfgAnalysis {
    /// Runs the whole layer-1 pipeline over `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` has no blocks or does not verify (out-of-range
    /// terminator targets).
    #[must_use]
    pub fn of(f: &Function) -> CfgAnalysis {
        let cfg = Cfg::of(f);
        let dom = Dominators::of(&cfg);
        let loops = natural_loops(&cfg, &dom);
        let depth = loop_depths(cfg.n, &loops);
        let freq = depth
            .iter()
            .zip(&cfg.reachable)
            .map(|(&d, &r)| {
                if r {
                    LOOP_BASE.powi(d.min(MAX_LOOP_DEPTH) as i32)
                } else {
                    0.0
                }
            })
            .collect();
        CfgAnalysis {
            cfg,
            loops,
            depth,
            freq,
        }
    }
}

#[cfg(test)]
mod tests {
    use biaslab_toolchain::ir::{Block, BlockId, Function, Terminator, Val};

    use super::*;

    /// A function skeleton with the given terminators and no ops.
    fn skeleton(terms: Vec<Terminator>) -> Function {
        Function {
            name: "t".into(),
            param_count: 0,
            returns_value: false,
            locals: vec![],
            blocks: terms
                .into_iter()
                .map(|term| Block { ops: vec![], term })
                .collect(),
            loops: vec![],
            next_val: 0,
        }
    }

    fn jump(b: u32) -> Terminator {
        Terminator::Jump(BlockId(b))
    }

    fn branch(t: u32, e: u32) -> Terminator {
        Terminator::Branch {
            cond: biaslab_isa::Cond::Eq,
            a: Val(0),
            b: Val(0),
            then_block: BlockId(t),
            else_block: BlockId(e),
        }
    }

    fn ret() -> Terminator {
        Terminator::Ret { value: None }
    }

    #[test]
    fn straight_line_has_no_loops() {
        let f = skeleton(vec![jump(1), jump(2), ret()]);
        let a = CfgAnalysis::of(&f);
        assert!(a.loops.is_empty());
        assert_eq!(a.freq, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn diamond_dominators() {
        // 0 -> {1,2} -> 3
        let f = skeleton(vec![branch(1, 2), jump(3), jump(3), ret()]);
        let cfg = Cfg::of(&f);
        let dom = Dominators::of(&cfg);
        assert!(dom.dominates(0, 3));
        assert!(!dom.dominates(1, 3));
        assert!(!dom.dominates(2, 3));
        assert_eq!(dom.idom(3), Some(0));
        assert_eq!(dom.idom(1), Some(0));
        assert_eq!(dom.idom(0), None);
    }

    #[test]
    fn single_loop_detected() {
        // 0 -> 1 (header) -> {2, 3}; 2 -> 1 (back edge); 3: ret.
        let f = skeleton(vec![jump(1), branch(2, 3), jump(1), ret()]);
        let a = CfgAnalysis::of(&f);
        assert_eq!(a.loops.len(), 1);
        assert_eq!(a.loops[0].header, 1);
        assert_eq!(a.loops[0].back_edges, vec![2]);
        assert_eq!(a.loops[0].blocks, vec![1, 2]);
        assert_eq!(a.depth, vec![0, 1, 1, 0]);
        assert_eq!(a.freq[1], LOOP_BASE);
        assert_eq!(a.freq[3], 1.0);
    }

    #[test]
    fn nested_loops_multiply_frequency() {
        // 0 -> 1(hdr outer) -> 2(hdr inner) -> {2 via 3, exit}:
        // 0: jump 1
        // 1: branch(2, 5)        outer header
        // 2: branch(3, 4)        inner header
        // 3: jump 2              inner back edge
        // 4: jump 1              outer back edge
        // 5: ret
        let f = skeleton(vec![
            jump(1),
            branch(2, 5),
            branch(3, 4),
            jump(2),
            jump(1),
            ret(),
        ]);
        let a = CfgAnalysis::of(&f);
        assert_eq!(a.loops.len(), 2);
        assert_eq!(a.depth[2], 2);
        assert_eq!(a.depth[3], 2);
        assert_eq!(a.depth[4], 1);
        assert_eq!(a.freq[3], LOOP_BASE * LOOP_BASE);
    }

    #[test]
    fn unreachable_blocks_have_zero_frequency() {
        let f = skeleton(vec![ret(), jump(0)]);
        let a = CfgAnalysis::of(&f);
        assert!(!a.cfg.reachable[1]);
        assert_eq!(a.freq[1], 0.0);
        assert!(a.loops.is_empty());
    }

    #[test]
    fn self_loop() {
        let f = skeleton(vec![branch(0, 1), ret()]);
        let a = CfgAnalysis::of(&f);
        assert_eq!(a.loops.len(), 1);
        assert_eq!(a.loops[0].blocks, vec![0]);
        assert_eq!(a.depth, vec![1, 0]);
    }
}
