//! Static hotness: which functions, branches and memory operations are
//! expected to execute often, derived from loop nesting and the call
//! graph — never from a run.
//!
//! Per-block frequencies come from [`crate::cfg`]; function-level weights
//! propagate those frequencies through the call graph by fixpoint
//! iteration (`weight(g) += weight(f) · freq(call site)`), damped and
//! clamped so recursion converges. The output is a per-function weight
//! normalized to the hottest function, plus hotness-weighted counts of
//! the IR features the address-space layer cares about: stack traffic
//! (locals), pointer traffic (loads/stores), call executions (implicit
//! frame push/pop traffic), and conditional branches.

use std::collections::HashMap;

use biaslab_toolchain::codegen::frame_plan;
use biaslab_toolchain::ir::{Module, Op, Terminator};
use biaslab_toolchain::opt::OptLevel;

use crate::cfg::CfgAnalysis;

/// Fixpoint iterations for call-graph weight propagation. The call
/// graphs in this suite are shallow (depth ≤ 5, occasional recursion);
/// a couple dozen damped rounds is plenty for a static estimate.
const CALL_ITERATIONS: usize = 24;

/// Weight clamp: keeps recursive cycles from overflowing to infinity.
const WEIGHT_CLAMP: f64 = 1e18;

/// Static hotness of one function.
#[derive(Debug, Clone)]
pub struct FunctionHotness {
    /// Function name (matches the linker symbol).
    pub name: String,
    /// Call-graph weight, normalized so the hottest function is 1.0.
    pub weight: f64,
    /// Layer-1 control-flow analysis of the function.
    pub cfg: CfgAnalysis,
    /// Frequency-weighted count of stack memory operations: accesses to
    /// *memory-resident* locals (register-promoted locals produce none —
    /// the codegen's own [`frame_plan`] decides which is which) plus the
    /// prologue/epilogue save-restore traffic executed once per entry.
    pub stack_ops: f64,
    /// Frame size in bytes the codegen will allocate, from the same
    /// [`frame_plan`]. Together with the name this identifies the frame:
    /// two levels whose hot traffic sits in identically-shaped frames
    /// respond to a stack shift in lockstep.
    pub frame: u32,
    /// Frequency-weighted count of pointer memory operations
    /// (`Load`/`Store`).
    pub mem_ops: f64,
    /// Frequency-weighted count of call sites: every execution pushes
    /// and pops a frame (ra/fp save + restore), stack traffic the IR
    /// does not spell out as local operations.
    pub call_ops: f64,
    /// Frequency-weighted count of conditional branches.
    pub branches: f64,
    /// Frequency-weighted count of all operations.
    pub total_ops: f64,
}

/// Static hotness of every function in a module.
#[derive(Debug, Clone)]
pub struct ModuleHotness {
    /// Per-function hotness, in the module's declaration order.
    pub functions: Vec<FunctionHotness>,
    by_name: HashMap<String, usize>,
}

impl ModuleHotness {
    /// Analyzes `module`, treating `entry` as the program entry point
    /// (weight 1 before propagation). An unknown entry name falls back
    /// to the first function. `level` selects the codegen frame plan the
    /// stack-traffic accounting mirrors (register promotion, frame
    /// sizes, prologue saves).
    ///
    /// # Panics
    ///
    /// Panics if the module has no functions or a function does not
    /// verify (empty blocks / out-of-range successors).
    #[must_use]
    pub fn of(module: &Module, entry: &str, level: OptLevel) -> ModuleHotness {
        assert!(!module.functions.is_empty(), "module has no functions");
        let n = module.functions.len();
        let cfgs: Vec<CfgAnalysis> = module.functions.iter().map(CfgAnalysis::of).collect();

        // Frequency-weighted call-site multiplier per (caller, callee).
        let mut call_weight = vec![vec![0.0f64; n]; n];
        for (ci, f) in module.functions.iter().enumerate() {
            for (bi, b) in f.blocks.iter().enumerate() {
                let freq = cfgs[ci].freq[bi];
                if freq == 0.0 {
                    continue;
                }
                for op in &b.ops {
                    if let Op::Call { func, .. } = op {
                        call_weight[ci][func.0 as usize] += freq;
                    }
                }
            }
        }

        let entry_idx = module
            .functions
            .iter()
            .position(|f| f.name == entry)
            .unwrap_or(0);
        let mut weight = vec![0.0f64; n];
        weight[entry_idx] = 1.0;
        for _ in 0..CALL_ITERATIONS {
            let mut next = vec![0.0f64; n];
            next[entry_idx] = 1.0;
            for caller in 0..n {
                if weight[caller] == 0.0 {
                    continue;
                }
                for callee in 0..n {
                    let w = call_weight[caller][callee];
                    if w > 0.0 {
                        next[callee] = (next[callee] + weight[caller] * w).min(WEIGHT_CLAMP);
                    }
                }
            }
            weight = next;
        }
        let max = weight.iter().copied().fold(0.0f64, f64::max).max(1.0);

        let functions: Vec<FunctionHotness> = module
            .functions
            .iter()
            .zip(cfgs)
            .zip(&weight)
            .map(|((f, cfg), &w)| {
                let plan = frame_plan(f, level);
                // One prologue + epilogue per entry (the entry block runs
                // exactly once per call, at frequency 1).
                let mut stack_ops = f64::from(plan.entry_stack_ops());
                let mut mem_ops = 0.0;
                let mut call_ops = 0.0;
                let mut branches = 0.0;
                let mut total_ops = 0.0;
                for (bi, b) in f.blocks.iter().enumerate() {
                    let freq = cfg.freq[bi];
                    if freq == 0.0 {
                        continue;
                    }
                    for op in &b.ops {
                        total_ops += freq;
                        match op {
                            Op::LoadLocal { local, .. } | Op::StoreLocal { local, .. }
                                if plan.in_memory(local.0 as usize) =>
                            {
                                stack_ops += freq;
                            }
                            Op::AddrLocal { .. } => stack_ops += freq,
                            Op::Load { .. } | Op::Store { .. } => mem_ops += freq,
                            Op::Call { .. } => call_ops += freq,
                            _ => {}
                        }
                    }
                    if matches!(b.term, Terminator::Branch { .. }) {
                        branches += freq;
                    }
                }
                FunctionHotness {
                    name: f.name.clone(),
                    weight: w / max,
                    cfg,
                    stack_ops,
                    frame: plan.frame,
                    mem_ops,
                    call_ops,
                    branches,
                    total_ops,
                }
            })
            .collect();
        let by_name = functions
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), i))
            .collect();
        ModuleHotness { functions, by_name }
    }

    /// The hotness entry for `name`, if the function exists.
    #[must_use]
    pub fn function(&self, name: &str) -> Option<&FunctionHotness> {
        self.by_name.get(name).map(|&i| &self.functions[i])
    }

    /// Compressed image weight of function `name` in `[0, 1]`:
    /// logarithmic in the raw call-graph weight, so a 4096× hotter inner
    /// loop dominates without erasing everything else from the
    /// histograms. Unknown names (e.g. the linker's `__start` shim)
    /// weigh zero.
    #[must_use]
    pub fn image_weight(&self, name: &str) -> f64 {
        self.function(name)
            .map(|f| compress(f.weight))
            .unwrap_or(0.0)
    }

    /// Weighted totals over all functions:
    /// `(stack_ops, mem_ops, call_ops, branches, total_ops)`, each
    /// scaled by the owning function's call-graph weight.
    #[must_use]
    pub fn traffic(&self) -> (f64, f64, f64, f64, f64) {
        let mut t = (0.0, 0.0, 0.0, 0.0, 0.0);
        for f in &self.functions {
            t.0 += f.weight * f.stack_ops;
            t.1 += f.weight * f.mem_ops;
            t.2 += f.weight * f.call_ops;
            t.3 += f.weight * f.branches;
            t.4 += f.weight * f.total_ops;
        }
        t
    }
}

/// Logarithmic compression of a normalized weight into `[0, 1]`.
#[must_use]
pub fn compress(w: f64) -> f64 {
    if w <= 0.0 {
        0.0
    } else {
        (1.0 + w * 65535.0).log2() / 16.0
    }
}

#[cfg(test)]
mod tests {
    use biaslab_workloads::suite;

    use super::*;

    #[test]
    fn entry_is_hot_and_weights_are_normalized() {
        let b = &suite()[0];
        let h = ModuleHotness::of(b.module(), b.entry(), OptLevel::O2);
        let main = h.function("main").expect("main exists");
        assert!(main.weight > 0.0);
        for f in &h.functions {
            assert!((0.0..=1.0).contains(&f.weight), "{} weight", f.name);
        }
        assert!(h.functions.iter().any(|f| f.weight == 1.0));
    }

    #[test]
    fn loop_nesting_outweighs_entry() {
        // Every suite benchmark drives its kernels from loops in main, so
        // some callee must outweigh main itself.
        let b = &suite()[0];
        let h = ModuleHotness::of(b.module(), b.entry(), OptLevel::O2);
        let main_w = h.function("main").unwrap().weight;
        assert!(
            h.functions.iter().any(|f| f.weight > main_w),
            "a loop-called kernel should be hotter than main"
        );
    }

    #[test]
    fn compress_is_monotone_and_bounded() {
        assert_eq!(compress(0.0), 0.0);
        assert!(compress(1.0) <= 1.0);
        assert!(compress(0.5) < compress(1.0));
        assert!(compress(1e-4) > 0.0);
    }

    #[test]
    fn unknown_symbol_weighs_zero() {
        let b = &suite()[0];
        let h = ModuleHotness::of(b.module(), b.entry(), OptLevel::O2);
        assert_eq!(h.image_weight("__start"), 0.0);
    }
}
