//! Address-space analyses of a linked process image.
//!
//! Layer 2 of the analyzer: every metric here is a pure function of the
//! image's addresses and the machine's indexing geometry (exposed by the
//! `biaslab-uarch` configuration types) — no instruction is decoded for
//! its semantics beyond identifying control transfers, and nothing runs.
//!
//! The metrics mirror the simulator's bias channels one-to-one:
//! hotness-weighted L1I/L2 set-pressure histograms (conflict misses),
//! BTB/gshare index collisions between hot branch sites (mispredict and
//! refill churn), fetch-window straddles at function entries and loop
//! headers (front-end waste), and stack-placement residue classes as a
//! function of the environment size (the env-size channel).

use std::collections::HashMap;

use biaslab_isa::Inst;
use biaslab_toolchain::layout::{align_down, PAGE_SIZE, STACK_ALIGN, STACK_TOP};
use biaslab_toolchain::link::Executable;
use biaslab_toolchain::load::Environment;
use biaslab_uarch::MachineConfig;

use crate::hotness::ModuleHotness;

/// A static control-transfer site in the linked text.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchSite {
    /// Address of the transfer instruction.
    pub pc: u32,
    /// Taken-path target address.
    pub target: u32,
    /// `true` for conditional branches (gshare-predicted), `false` for
    /// direct jumps/calls (BTB only).
    pub conditional: bool,
    /// Compressed hotness weight of the containing function.
    pub weight: f64,
}

/// Weighted set-pressure histogram: how much hot code each cache set
/// holds, and how much of it cannot co-reside.
#[derive(Debug, Clone)]
pub struct SetPressure {
    /// Per-set total weight of mapped lines.
    pub histogram: Vec<f64>,
    /// Weighted fraction of lines that exceed their set's associativity
    /// (each set keeps its `ways` heaviest lines; the rest overflow).
    pub overflow: f64,
}

/// Everything layer 2 extracts from one linked image.
#[derive(Debug, Clone)]
pub struct ImageFacts {
    /// Text segment size in bytes.
    pub text_bytes: u32,
    /// Total compressed weight of analyzed functions.
    pub total_weight: f64,
    /// L1I set pressure.
    pub l1i: SetPressure,
    /// L2 set pressure (code footprint only).
    pub l2: SetPressure,
    /// I-TLB set pressure over code pages.
    pub itlb: SetPressure,
    /// Hot control-transfer sites found in the text.
    pub branch_sites: Vec<BranchSite>,
    /// Weighted fraction of transfer executions predicted to collide in
    /// the direct-mapped BTB (two hot sites sharing a slot).
    pub btb_conflict: f64,
    /// Weighted fraction of conditional-branch executions whose gshare
    /// index collides with another hot branch for every history value.
    pub gshare_conflict: f64,
    /// Weighted mean fetch-window offset of hot entry points (function
    /// entries and loop headers), in `[0, 1)`: `0` means every hot
    /// target starts a full window, values near `1` waste most of the
    /// first fetch.
    pub entry_straddle: f64,
    /// Weighted mean *excess* fetch windows spanned by hot loop bodies,
    /// relative to the best possible alignment: a loop of `k`
    /// instructions needs `⌈4k / fetch⌉` windows at best; starting it
    /// mid-window costs one more every iteration. In `[0, 1]`.
    pub loop_fetch_excess: f64,
    /// Same, for I-cache lines: excess lines spanned by hot loop bodies
    /// relative to perfect line alignment. In `[0, 1]`.
    pub loop_line_excess: f64,
    /// Weighted fraction of hot functions whose body crosses a page
    /// boundary (extra I-TLB reach).
    pub page_crossers: f64,
}

/// Computes every address-space metric for `exe` under `machine`,
/// weighting by the IR-derived `hotness` (symbol names match function
/// names).
///
/// # Panics
///
/// Panics if the machine geometry is inconsistent (non-power-of-two set
/// counts).
#[must_use]
pub fn image_facts(
    exe: &Executable,
    hotness: &ModuleHotness,
    machine: &MachineConfig,
) -> ImageFacts {
    // Function address ranges, heaviest-first not needed: keep symbol order.
    let text_end = exe.text_base() + exe.text_size();
    let funcs: Vec<(&str, u32, u32, f64)> = exe
        .symbols()
        .iter()
        .filter(|s| s.addr >= exe.text_base() && s.addr < text_end && s.size > 0)
        .map(|s| {
            (
                s.name.as_str(),
                s.addr,
                s.size,
                hotness.image_weight(&s.name),
            )
        })
        .collect();
    let total_weight: f64 = funcs.iter().map(|f| f.3).sum();

    // --- cache-set and TLB-set pressure histograms ---------------------
    let l1i = set_pressure(
        machine.l1i.sets() as usize,
        machine.l1i.ways as usize,
        &funcs,
        |addr| (machine.l1i.set_of(addr), machine.l1i.tag_of(addr)),
        machine.l1i.line,
    );
    let l2 = set_pressure(
        machine.l2.sets() as usize,
        machine.l2.ways as usize,
        &funcs,
        |addr| (machine.l2.set_of(addr), machine.l2.tag_of(addr)),
        machine.l2.line,
    );
    let itlb = set_pressure(
        machine.itlb.sets() as usize,
        machine.itlb.ways as usize,
        &funcs,
        |addr| (machine.itlb.set_of(addr), machine.itlb.tag_of(addr)),
        PAGE_SIZE,
    );

    // --- control-transfer sites ----------------------------------------
    let weight_at = |pc: u32| -> f64 {
        funcs
            .iter()
            .find(|&&(_, addr, size, _)| pc >= addr && pc < addr + size)
            .map_or(0.0, |f| f.3)
    };
    let mut branch_sites = Vec::new();
    for (i, inst) in exe.text().iter().enumerate() {
        let pc = exe.text_base() + 4 * i as u32;
        match *inst {
            Inst::Branch { offset, .. } => branch_sites.push(BranchSite {
                pc,
                target: pc.wrapping_add(4).wrapping_add(offset as u32),
                conditional: true,
                weight: weight_at(pc),
            }),
            Inst::Jal { offset, .. } => branch_sites.push(BranchSite {
                pc,
                target: pc.wrapping_add(4).wrapping_add(offset as u32),
                conditional: false,
                weight: weight_at(pc),
            }),
            _ => {}
        }
    }

    let btb_conflict = index_conflict(
        branch_sites
            .iter()
            .map(|s| (machine.branch.btb_index(s.pc), s.weight)),
    );
    let gshare_conflict = index_conflict(
        branch_sites
            .iter()
            .filter(|s| s.conditional)
            .map(|s| (machine.branch.gshare_index(s.pc, 0), s.weight)),
    );

    // --- fetch-window straddles at hot entry points --------------------
    // Hot targets: function entries, plus loop headers (targets of
    // backward transfers — the only way this ISA forms a loop).
    let mut targets: Vec<(u32, f64)> = funcs.iter().map(|&(_, addr, _, w)| (addr, w)).collect();
    targets.extend(
        branch_sites
            .iter()
            .filter(|s| s.target <= s.pc)
            .map(|s| (s.target, s.weight)),
    );
    let mut straddle = 0.0;
    let mut straddle_w = 0.0;
    for &(t, w) in &targets {
        straddle += w * f64::from(machine.fetch_offset_of(t)) / f64::from(machine.fetch_bytes);
        straddle_w += w;
    }
    let entry_straddle = if straddle_w > 0.0 {
        straddle / straddle_w
    } else {
        0.0
    };

    // --- loop-body footprint vs best alignment -------------------------
    // A backward transfer `pc → t` closes a loop body `[t, pc+4)`; the
    // number of fetch windows (and I-cache lines) that body spans depends
    // on where the linker put `t` modulo the window (line) size — the
    // front-end cost the link order and text offset actually move on
    // small codes.
    let (loop_fetch_excess, loop_line_excess) = {
        let mut fe = 0.0;
        let mut le = 0.0;
        let mut w_sum = 0.0;
        for s in branch_sites.iter().filter(|s| s.target <= s.pc) {
            let bytes = f64::from(s.pc + 4 - s.target);
            let spans = |granule: u32| -> f64 {
                let actual = f64::from(s.pc / granule - s.target / granule + 1);
                let best = (bytes / f64::from(granule)).ceil();
                (actual / best - 1.0).clamp(0.0, 1.0)
            };
            fe += s.weight * spans(machine.fetch_bytes);
            le += s.weight * spans(machine.l1i.line);
            w_sum += s.weight;
        }
        if w_sum > 0.0 {
            (fe / w_sum, le / w_sum)
        } else {
            (0.0, 0.0)
        }
    };

    let crossers = funcs
        .iter()
        .filter(|&&(_, addr, size, _)| addr / PAGE_SIZE != (addr + size - 1) / PAGE_SIZE)
        .map(|f| f.3)
        .sum::<f64>()
        // An empty sum is -0.0; `+ 0.0` normalizes the sign so the
        // report never prints "-0.0000".
        + 0.0;
    let page_crossers = if total_weight > 0.0 {
        crossers / total_weight
    } else {
        0.0
    };

    ImageFacts {
        text_bytes: exe.text_size(),
        total_weight,
        l1i,
        l2,
        itlb,
        branch_sites,
        btb_conflict,
        gshare_conflict,
        entry_straddle,
        loop_fetch_excess,
        loop_line_excess,
        page_crossers,
    }
}

/// Builds a weighted pressure histogram over `sets` for the lines (of
/// `granule` bytes) covered by each function range, then measures the
/// weight that exceeds each set's associativity.
fn set_pressure(
    sets: usize,
    ways: usize,
    funcs: &[(&str, u32, u32, f64)],
    index: impl Fn(u32) -> (u32, u32),
    granule: u32,
) -> SetPressure {
    // Distinct (set, tag) pairs with accumulated weight: the same line
    // touched twice is still one way.
    let mut lines: HashMap<(u32, u32), f64> = HashMap::new();
    for &(_, addr, size, w) in funcs {
        if w == 0.0 {
            continue;
        }
        let first = addr / granule;
        let last = (addr + size - 1) / granule;
        for line in first..=last {
            let (set, tag) = index(line * granule);
            let e = lines.entry((set, tag)).or_insert(0.0);
            *e = e.max(w);
        }
    }
    let mut histogram = vec![0.0f64; sets];
    let mut per_set: Vec<Vec<f64>> = vec![Vec::new(); sets];
    for (&(set, _), &w) in &lines {
        histogram[set as usize] += w;
        per_set[set as usize].push(w);
    }
    let total: f64 = histogram.iter().sum();
    let mut over = 0.0;
    for ws in &mut per_set {
        if ws.len() > ways {
            ws.sort_by(|a, b| b.partial_cmp(a).expect("weights are finite"));
            over += ws[ways..].iter().sum::<f64>();
        }
    }
    SetPressure {
        histogram,
        overflow: if total > 0.0 { over / total } else { 0.0 },
    }
}

/// Weighted conflict mass of sites grouped by a direct-mapped index:
/// within each index, everything but the heaviest site is in conflict.
/// Returns the conflicting weight as a fraction of the total.
fn index_conflict(sites: impl Iterator<Item = (u32, f64)>) -> f64 {
    let mut groups: HashMap<u32, (f64, f64)> = HashMap::new(); // (sum, max)
    for (idx, w) in sites {
        let g = groups.entry(idx).or_insert((0.0, 0.0));
        g.0 += w;
        g.1 = g.1.max(w);
    }
    let total: f64 = groups.values().map(|g| g.0).sum();
    if total == 0.0 {
        return 0.0;
    }
    groups.values().map(|g| g.0 - g.1).sum::<f64>() / total
}

/// How the initial stack placement responds to the environment size:
/// the loader's arithmetic (`sp = align_down(STACK_TOP - env_bytes -
/// shift, 16)`) evaluated over a grid of environment sizes, classified
/// by the machine's L1D line, set, and bank mappings.
#[derive(Debug, Clone)]
pub struct StackFacts {
    /// Distinct L1D bank residues of `sp` over the grid.
    pub bank_classes: u32,
    /// Distinct line offsets (`sp mod line`) over the grid.
    pub line_classes: u32,
    /// Distinct L1D set indices of the top stack line over the grid.
    pub set_classes: u32,
    /// Distinct D-TLB sets of the top stack page over the grid.
    pub dtlb_classes: u32,
    /// Hotness-weighted stack operations (locals traffic plus the
    /// implicit frame push/pop traffic of call executions).
    pub stack_traffic: f64,
    /// Hotness-weighted pointer memory operations (globals/heap traffic).
    pub mem_traffic: f64,
    /// Hotness-weighted conditional-branch executions.
    pub branch_traffic: f64,
    /// Hotness-weighted total operations.
    pub total_traffic: f64,
    /// Per-frame share of the hot stack traffic, keyed by
    /// `(function, frame bytes)` and sorted — the level's "frame
    /// profile". Two optimization levels whose profiles match keep
    /// their hot stack traffic in identically-shaped frames, so a stack
    /// shift moves both levels' residues in lockstep and the response
    /// cancels out of the O3/O2 ratio; inlining re-homes traffic and
    /// resizes frames, making the profiles diverge.
    pub stack_profile: Vec<((String, u32), f64)>,
}

impl StackFacts {
    /// Evaluates the loader's stack placement for every environment size
    /// in `env_sizes` (bytes, as accepted by
    /// [`Environment::of_total_size`]) on `machine`, and summarizes the
    /// module's static stack/memory traffic mix from `hotness`.
    ///
    /// # Panics
    ///
    /// Panics if the machine geometry is inconsistent.
    #[must_use]
    pub fn of(hotness: &ModuleHotness, machine: &MachineConfig, env_sizes: &[u32]) -> StackFacts {
        let mut banks = Vec::new();
        let mut lines = Vec::new();
        let mut sets = Vec::new();
        let mut dtlbs = Vec::new();
        for &bytes in env_sizes {
            let env = Environment::of_total_size(bytes);
            let sp = align_down(STACK_TOP - env.stack_bytes(), STACK_ALIGN);
            banks.push(machine.l1d_bank_of(sp));
            lines.push(sp % machine.l1d.line);
            sets.push(machine.l1d.set_of(sp));
            dtlbs.push(machine.dtlb.set_of(sp.saturating_sub(1)));
        }
        let distinct = |v: &mut Vec<u32>| -> u32 {
            v.sort_unstable();
            v.dedup();
            v.len() as u32
        };
        let (stack_traffic, mem_traffic, _call_traffic, branch_traffic, total_traffic) =
            hotness.traffic();
        let mut stack_profile: Vec<((String, u32), f64)> = hotness
            .functions
            .iter()
            .map(|f| ((f.name.clone(), f.frame), f.weight * f.stack_ops))
            .filter(|(_, s)| *s > 0.0)
            .collect();
        let profile_total: f64 = stack_profile.iter().map(|(_, s)| s).sum();
        if profile_total > 0.0 {
            for (_, s) in &mut stack_profile {
                *s /= profile_total;
            }
        }
        stack_profile.sort_by(|a, b| a.0.cmp(&b.0));
        StackFacts {
            bank_classes: distinct(&mut banks),
            line_classes: distinct(&mut lines),
            set_classes: distinct(&mut sets),
            dtlb_classes: distinct(&mut dtlbs),
            stack_traffic,
            mem_traffic,
            branch_traffic,
            total_traffic,
            stack_profile,
        }
    }

    /// The paired-stream intensity in `[0, 1]`: how much of the hot
    /// memory traffic alternates between stack and non-stack streams —
    /// the precondition for the bank/set ping-pong that makes the
    /// env-size channel bite.
    #[must_use]
    pub fn paired_traffic(&self) -> f64 {
        let total = self.stack_traffic + self.mem_traffic;
        if total == 0.0 {
            return 0.0;
        }
        2.0 * self.stack_traffic.min(self.mem_traffic) / total
    }

    /// Fraction of hot operations that touch memory at all (clamped:
    /// the implicit call traffic is counted on top of the IR ops).
    #[must_use]
    pub fn memory_intensity(&self) -> f64 {
        if self.total_traffic == 0.0 {
            return 0.0;
        }
        ((self.stack_traffic + self.mem_traffic) / self.total_traffic).min(1.0)
    }

    /// Fraction of hot operations that are conditional branches — how
    /// front-end-bound the hot code is, and therefore how much a
    /// fetch/alignment perturbation can move total cycles.
    #[must_use]
    pub fn branch_density(&self) -> f64 {
        if self.total_traffic == 0.0 {
            return 0.0;
        }
        self.branch_traffic / self.total_traffic
    }
}

#[cfg(test)]
mod tests {
    use biaslab_toolchain::codegen::compile;
    use biaslab_toolchain::link::Linker;
    use biaslab_toolchain::opt::{optimize, OptLevel};
    use biaslab_workloads::suite;

    use super::*;

    fn facts_for(bench: usize, machine: &MachineConfig) -> (ImageFacts, ModuleHotness) {
        let b = &suite()[bench];
        let opt = optimize(b.module(), OptLevel::O2);
        let hot = ModuleHotness::of(&opt, b.entry(), OptLevel::O2);
        let compiled = compile(&opt, OptLevel::O2);
        let exe = Linker::new().link(&compiled, b.entry()).expect("links");
        (image_facts(&exe, &hot, machine), hot)
    }

    #[test]
    fn finds_hot_branch_sites() {
        let (facts, _) = facts_for(0, &MachineConfig::core2());
        assert!(!facts.branch_sites.is_empty());
        assert!(facts.branch_sites.iter().any(|s| s.conditional));
        assert!(facts.branch_sites.iter().any(|s| s.weight > 0.0));
        // Loop back edges exist: some transfer goes backwards.
        assert!(facts.branch_sites.iter().any(|s| s.target <= s.pc));
    }

    #[test]
    fn metrics_are_normalized() {
        let (facts, _) = facts_for(0, &MachineConfig::core2());
        for v in [
            facts.l1i.overflow,
            facts.l2.overflow,
            facts.itlb.overflow,
            facts.btb_conflict,
            facts.gshare_conflict,
            facts.entry_straddle,
            facts.page_crossers,
        ] {
            assert!((0.0..=1.0).contains(&v), "metric {v} out of range");
        }
        assert!(facts.total_weight > 0.0);
    }

    #[test]
    fn pressure_histogram_covers_the_text() {
        let (facts, _) = facts_for(0, &MachineConfig::core2());
        let mapped: f64 = facts.l1i.histogram.iter().sum();
        assert!(mapped > 0.0);
        assert_eq!(
            facts.l1i.histogram.len(),
            MachineConfig::core2().l1i.sets() as usize
        );
    }

    #[test]
    fn stack_classes_follow_the_loader() {
        let b = &suite()[0];
        let opt = optimize(b.module(), OptLevel::O2);
        let hot = ModuleHotness::of(&opt, b.entry(), OptLevel::O2);
        let grid: Vec<u32> = (0..16).map(|i| i * 176).collect();
        let f = StackFacts::of(&hot, &MachineConfig::core2(), &grid);
        // 176 is not a multiple of 64: the env grid must visit several
        // line offsets and banks, which is exactly the bias channel.
        assert!(f.line_classes > 1, "line classes: {}", f.line_classes);
        assert!(f.bank_classes > 1, "bank classes: {}", f.bank_classes);
        assert!(f.stack_traffic >= 0.0 && f.total_traffic > 0.0);
        assert!((0.0..=1.0).contains(&f.paired_traffic()));
        assert!((0.0..=1.0).contains(&f.memory_intensity()));
    }

    #[test]
    fn index_conflict_counts_only_shared_slots() {
        // Two sites on one slot, one site alone: the lighter of the pair
        // is the conflicting mass.
        let c = index_conflict([(0, 1.0), (0, 0.5), (1, 1.0)].into_iter());
        let expect = 0.5 / 2.5;
        assert!((c - expect).abs() < 1e-12, "{c} vs {expect}");
        assert_eq!(index_conflict(std::iter::empty()), 0.0);
    }
}
