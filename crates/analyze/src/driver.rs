//! Convenience drivers: run the whole static pipeline for a benchmark.
//!
//! Everything here goes through `Harness::executable`, which compiles
//! and links but never loads or runs — the orchestrator's `simulated`
//! counter is untouched by construction, and the zero-simulation test
//! in `tests/static_vs_dynamic.rs` pins that.

use biaslab_core::{Harness, LinkOrder, Orchestrator};
use biaslab_toolchain::opt::{optimize, OptLevel};
use biaslab_uarch::MachineConfig;

use crate::hotness::ModuleHotness;
use crate::image::{image_facts, StackFacts};
use crate::predict::{predict, LevelAnalysis, SensitivityReport};

/// The optimization levels whose spread the analyzer predicts.
pub const LEVELS: [OptLevel; 2] = [OptLevel::O2, OptLevel::O3];

/// Alternative link orders re-linked statically per level.
pub const ORDERS: [LinkOrder; 4] = [
    LinkOrder::Reversed,
    LinkOrder::Alphabetical,
    LinkOrder::Random(1),
    LinkOrder::Random(2),
];

/// Alternative whole-text offsets re-linked statically per level.
pub const OFFSETS: [u32; 4] = [16, 28, 40, 52];

/// The environment-size grid used for stack residue classes: the same
/// 176-byte stride `core::audit` sweeps dynamically.
#[must_use]
pub fn env_grid() -> Vec<u32> {
    (0..16).map(|i| i * 176).collect()
}

/// Analyzes one benchmark (via its measurement harness) on `machine`.
/// Pure compile + link: no process is loaded, no instruction executes.
///
/// # Errors
///
/// Returns a message if any of the static links fails.
pub fn analyze_harness(
    harness: &Harness,
    machine: &MachineConfig,
) -> Result<SensitivityReport, String> {
    let bench = harness.benchmark();
    let names = harness.object_names();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let default_order = LinkOrder::Default.resolve(&name_refs);
    let grid = env_grid();

    let mut levels = Vec::with_capacity(LEVELS.len());
    for level in LEVELS {
        let optimized = optimize(bench.module(), level);
        let hot = ModuleHotness::of(&optimized, bench.entry(), level);

        let link = |order: &[usize], offset: u32| {
            harness
                .executable(level, order, offset)
                .map_err(|e| format!("{}/{}: link failed: {e:?}", bench.name(), level.name()))
        };
        let base_exe = link(&default_order, 0)?;
        let base = image_facts(&base_exe, &hot, machine);
        let mut order_variants = Vec::with_capacity(ORDERS.len());
        for order in ORDERS {
            let exe = link(&order.resolve(&name_refs), 0)?;
            order_variants.push(image_facts(&exe, &hot, machine));
        }
        let mut offset_variants = Vec::with_capacity(OFFSETS.len());
        for offset in OFFSETS {
            let exe = link(&default_order, offset)?;
            offset_variants.push(image_facts(&exe, &hot, machine));
        }

        let stack = StackFacts::of(&hot, machine, &grid);
        let mut hot_functions: Vec<(String, f64)> = hot
            .functions
            .iter()
            .map(|f| (f.name.clone(), f.weight))
            .collect();
        hot_functions.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("weights are finite")
                .then(a.0.cmp(&b.0))
        });
        hot_functions.truncate(5);

        levels.push(LevelAnalysis {
            level,
            base,
            order_variants,
            offset_variants,
            stack,
            hot_functions,
        });
    }
    Ok(predict(bench.name(), machine, levels))
}

/// Analyzes a benchmark by name, sharing the process-wide harness (and
/// its compile cache) with the rest of the laboratory.
///
/// # Errors
///
/// Returns a message for unknown benchmarks or failed links.
pub fn analyze_benchmark(
    bench: &str,
    machine: &MachineConfig,
) -> Result<SensitivityReport, String> {
    let harness = Orchestrator::global()
        .harness(bench)
        .ok_or_else(|| format!("unknown benchmark `{bench}` — `biaslab list` shows the suite"))?;
    analyze_harness(&harness, machine)
}

/// Analyzes the whole suite on `machine` and returns the reports ranked
/// by predicted spread, most sensitive first.
///
/// # Errors
///
/// Returns the first analysis failure.
pub fn rank_suite(machine: &MachineConfig) -> Result<Vec<SensitivityReport>, String> {
    let mut reports: Vec<SensitivityReport> = biaslab_workloads::suite()
        .iter()
        .map(|b| analyze_benchmark(b.name(), machine))
        .collect::<Result<_, _>>()?;
    reports.sort_by(|a, b| {
        b.predicted_spread
            .partial_cmp(&a.predicted_spread)
            .expect("scores are finite")
            .then(a.bench.cmp(&b.bench))
    });
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyzes_without_simulating() {
        let before = Orchestrator::global().stats().simulated;
        let r = analyze_benchmark("perlbench", &MachineConfig::core2()).expect("analyzes");
        assert_eq!(r.bench, "perlbench");
        assert_eq!(r.machine, "core2");
        assert_eq!(r.levels.len(), 2);
        assert!(r.predicted_spread.is_finite() && r.predicted_spread >= 0.0);
        assert_eq!(
            Orchestrator::global().stats().simulated,
            before,
            "static analysis must not simulate"
        );
    }

    #[test]
    fn unknown_benchmark_is_an_error() {
        let err = analyze_benchmark("nonesuch", &MachineConfig::core2()).unwrap_err();
        assert!(err.contains("unknown benchmark"));
    }

    #[test]
    fn ranking_is_sorted_and_complete() {
        let ranked = rank_suite(&MachineConfig::o3cpu()).expect("ranks");
        assert_eq!(ranked.len(), biaslab_workloads::suite().len());
        for w in ranked.windows(2) {
            assert!(w[0].predicted_spread >= w[1].predicted_spread);
        }
    }
}
