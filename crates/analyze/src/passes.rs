//! The static-analysis pass manager.
//!
//! `biaslint` (and any future diagnostic) wants several per-function
//! analyses — control flow, liveness, reaching definitions, value
//! ranges — over the *same* optimized module, and different lints want
//! different subsets. The [`PassManager`] memoizes each analysis per
//! function so a pass runs at most once no matter how many lints ask,
//! and counts what actually ran so the lint driver can export
//! `analyze.lint.{passes_run,functions_analyzed}` to the telemetry
//! registry.
//!
//! ## Contract
//!
//! * A *pass* is a pure function of one IR [`Function`] (the dataflow
//!   passes live in `biaslab_toolchain::dataflow`; the CFG pass is this
//!   crate's [`CfgAnalysis`]). Passes never see addresses — address
//!   facts come from `crate::image` and are layered on top by the lints.
//! * Results are computed lazily on first request and cached for the
//!   lifetime of the manager; all accessors take `&self`.
//! * `passes_run()` counts distinct `(pass, function)` computations;
//!   `functions_analyzed()` counts functions with at least one pass run.
//!
//! Adding a pass is mechanical: add a `OnceCell` slot, an accessor that
//! goes through [`PassManager::memo`], and (if a lint needs it) use it —
//! nothing else in the crate has to change.

use std::cell::{Cell, OnceCell};

use biaslab_toolchain::dataflow::{Liveness, ReachingDefs, ValueRanges};
use biaslab_toolchain::ir::{Function, Module};
use biaslab_toolchain::opt::OptLevel;

use crate::cfg::CfgAnalysis;

/// Per-function memoization slots, one `OnceCell` per registered pass.
#[derive(Default)]
struct FunctionSlot {
    cfg: OnceCell<CfgAnalysis>,
    liveness: OnceCell<Liveness>,
    reaching: OnceCell<ReachingDefs>,
    ranges: OnceCell<ValueRanges>,
    touched: Cell<bool>,
}

/// Lazily-memoized per-function analyses over one optimized module.
pub struct PassManager<'m> {
    module: &'m Module,
    level: OptLevel,
    slots: Vec<FunctionSlot>,
    passes_run: Cell<u64>,
}

impl<'m> PassManager<'m> {
    /// Wraps an (already optimized) module. `level` is carried as
    /// context for diagnostics; the passes themselves are level-blind.
    #[must_use]
    pub fn new(module: &'m Module, level: OptLevel) -> PassManager<'m> {
        let slots = module
            .functions
            .iter()
            .map(|_| FunctionSlot::default())
            .collect();
        PassManager {
            module,
            level,
            slots,
            passes_run: Cell::new(0),
        }
    }

    /// The module under analysis.
    #[must_use]
    pub fn module(&self) -> &'m Module {
        self.module
    }

    /// The optimization level the module was optimized at.
    #[must_use]
    pub fn level(&self) -> OptLevel {
        self.level
    }

    /// The IR function at `func` (index into the module's declaration
    /// order).
    ///
    /// # Panics
    ///
    /// Panics if `func` is out of range.
    #[must_use]
    pub fn function(&self, func: usize) -> &'m Function {
        &self.module.functions[func]
    }

    /// Index of the function named `name`, if it exists.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<usize> {
        self.module.functions.iter().position(|f| f.name == name)
    }

    fn memo<'a, T>(
        &'a self,
        func: usize,
        cell: &'a OnceCell<T>,
        run: impl FnOnce(&Function) -> T,
    ) -> &'a T {
        cell.get_or_init(|| {
            self.passes_run.set(self.passes_run.get() + 1);
            self.slots[func].touched.set(true);
            run(&self.module.functions[func])
        })
    }

    /// Control-flow analysis (dominators, natural loops, frequencies).
    ///
    /// # Panics
    ///
    /// Panics if `func` is out of range.
    #[must_use]
    pub fn cfg(&self, func: usize) -> &CfgAnalysis {
        self.memo(func, &self.slots[func].cfg, CfgAnalysis::of)
    }

    /// Backward liveness of local-slot cells.
    ///
    /// # Panics
    ///
    /// Panics if `func` is out of range.
    #[must_use]
    pub fn liveness(&self, func: usize) -> &Liveness {
        self.memo(func, &self.slots[func].liveness, Liveness::of)
    }

    /// Forward reaching definitions of local-slot cells.
    ///
    /// # Panics
    ///
    /// Panics if `func` is out of range.
    #[must_use]
    pub fn reaching(&self, func: usize) -> &ReachingDefs {
        self.memo(func, &self.slots[func].reaching, ReachingDefs::of)
    }

    /// Constant/value-range propagation.
    ///
    /// # Panics
    ///
    /// Panics if `func` is out of range.
    #[must_use]
    pub fn ranges(&self, func: usize) -> &ValueRanges {
        self.memo(func, &self.slots[func].ranges, ValueRanges::of)
    }

    /// Distinct `(pass, function)` computations performed so far.
    #[must_use]
    pub fn passes_run(&self) -> u64 {
        self.passes_run.get()
    }

    /// Functions with at least one pass computed.
    #[must_use]
    pub fn functions_analyzed(&self) -> u64 {
        self.slots.iter().filter(|s| s.touched.get()).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use biaslab_toolchain::opt::optimize;
    use biaslab_workloads::suite;

    use super::*;

    #[test]
    fn passes_are_memoized_and_counted() {
        let b = &suite()[0];
        let module = optimize(b.module(), OptLevel::O2);
        let pm = PassManager::new(&module, OptLevel::O2);
        assert_eq!(pm.passes_run(), 0);
        assert_eq!(pm.functions_analyzed(), 0);

        let l1 = pm.liveness(0) as *const Liveness;
        let l2 = pm.liveness(0) as *const Liveness;
        assert_eq!(l1, l2, "second request must hit the cache");
        assert_eq!(pm.passes_run(), 1);
        assert_eq!(pm.functions_analyzed(), 1);

        let _ = pm.reaching(0);
        let _ = pm.ranges(0);
        let _ = pm.cfg(0);
        assert_eq!(pm.passes_run(), 4);
        assert_eq!(pm.functions_analyzed(), 1);

        let _ = pm.liveness(1);
        assert_eq!(pm.passes_run(), 5);
        assert_eq!(pm.functions_analyzed(), 2);
    }

    #[test]
    fn results_match_direct_computation() {
        let b = &suite()[1];
        let module = optimize(b.module(), OptLevel::O3);
        let pm = PassManager::new(&module, OptLevel::O3);
        let f = pm.function(0);
        let direct = Liveness::of(f);
        let managed = pm.liveness(0);
        for bi in 0..f.blocks.len() {
            for c in 0..direct.cells.len() {
                assert_eq!(managed.is_live_in(bi, c), direct.is_live_in(bi, c));
                assert_eq!(managed.is_live_out(bi, c), direct.is_live_out(bi, c));
            }
        }
        assert_eq!(pm.level(), OptLevel::O3);
        assert_eq!(pm.find(&f.name), Some(0));
        assert_eq!(pm.find("nonesuch"), None);
    }
}
