//! # biaslab-analyze — the static bias analyzer
//!
//! The paper demonstrates measurement bias by *running* hundreds of
//! setups; this crate predicts it without executing a single
//! instruction. Its thesis is the paper's own: the bias channels are
//! mechanistic functions of addresses — cache-set conflicts, BTB and
//! gshare aliasing, fetch-window straddles, stack placement — so a
//! benchmark's susceptibility is decidable from its linked image and an
//! abstract machine geometry.
//!
//! Three layers:
//!
//! 1. [`cfg`] + [`hotness`] — IR-level analysis over `biaslab-toolchain`:
//!    dominators, natural loops, loop-nesting frequency estimates, and
//!    call-graph-propagated function weights that say *which* code is hot;
//! 2. [`image`] — address-space analyses of the linked `Executable`
//!    against the indexing geometry the `biaslab-uarch` config types
//!    expose: set-pressure histograms, index-collision detection,
//!    straddle detection, and stack-residue classes;
//! 3. [`predict`] — per-factor scores (env size, link order, text
//!    offset) and a ranking index, rendered as a [`SensitivityReport`].
//!
//! The [`driver`] module wires the layers to a measurement `Harness`
//! (compile + link only); `biaslab analyze <bench>` is the CLI face.
//! Validation is dynamic-vs-static: `tests/static_vs_dynamic.rs` checks
//! that the static ranking rank-correlates positively with the
//! simulator-measured O3/O2 spread on all three machine models.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cfg;
pub mod driver;
pub mod hotness;
pub mod image;
pub mod lint;
pub mod passes;
pub mod predict;

pub use cfg::{CfgAnalysis, Dominators, NaturalLoop};
pub use driver::{analyze_benchmark, analyze_harness, rank_suite};
pub use hotness::ModuleHotness;
pub use image::{ImageFacts, StackFacts};
pub use lint::{
    lint_benchmark, lint_harness, lint_suite, lint_suite_jsonl, validate_lint_line, Finding,
    FindingClass, LintReport, Remedy,
};
pub use passes::PassManager;
pub use predict::{Factor, FactorScore, SensitivityReport};
