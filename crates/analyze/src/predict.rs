//! The predictor: turn layer-2 facts into per-factor sensitivity scores
//! and a ranking index, with a human-readable report.
//!
//! Each setup factor gets a dimensionless score in (roughly) `[0, 1]`.
//! The ranked observable is the **O3/O2 speedup — a ratio** — so every
//! score targets the part of the layout response the two optimization
//! levels do *not* share; whatever hits both images identically cancels
//! out of the ratio no matter how many cycles it moves:
//!
//! * **env size** — how much of the hot memory traffic is a paired
//!   stack/other stream (the loader moves only the stack), times the
//!   *divergence* of the two levels' per-function stack profiles: when
//!   inlining re-homes hot stack traffic into different frames, the two
//!   levels respond to the same stack shift differently;
//! * **link order** — the between-level dispersion of the
//!   address-derived metrics (I-cache overflow, BTB/gshare collisions,
//!   fetch straddles) across statically re-linked permutations of the
//!   object files, scaled by the hot code's branch density (straight-line
//!   kernels hide front-end bubbles behind data stalls);
//! * **text offset** — the same construction across whole-text shifts,
//!   which preserve inter-function deltas and so isolate the
//!   alignment-sensitive part.
//!
//! The sum is the benchmark's predicted-spread index, used to rank
//! benchmarks by how far their measured O3/O2 speedup should move when a
//! careless experimenter varies the setup.

use std::fmt;

use biaslab_toolchain::opt::OptLevel;
use biaslab_uarch::MachineConfig;

use crate::image::{ImageFacts, StackFacts};

/// A setup factor the analyzer scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Factor {
    /// Environment size (moves the initial stack pointer).
    EnvSize,
    /// Object-file link order (moves every function).
    LinkOrder,
    /// Whole-text link offset (shifts all code together).
    TextOffset,
}

impl fmt::Display for Factor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Factor::EnvSize => "env size",
            Factor::LinkOrder => "link order",
            Factor::TextOffset => "text offset",
        })
    }
}

/// One factor's predicted sensitivity.
#[derive(Debug, Clone)]
pub struct FactorScore {
    /// The factor.
    pub factor: Factor,
    /// Dimensionless sensitivity index (larger = more biasable).
    pub score: f64,
    /// One-line mechanistic justification.
    pub rationale: String,
}

/// Everything the analyzer computed for one optimization level.
#[derive(Debug, Clone)]
pub struct LevelAnalysis {
    /// The optimization level the image was compiled at.
    pub level: OptLevel,
    /// Facts for the default-order, zero-offset image.
    pub base: ImageFacts,
    /// Facts for alternative link orders (same offset).
    pub order_variants: Vec<ImageFacts>,
    /// Facts for alternative text offsets (same order).
    pub offset_variants: Vec<ImageFacts>,
    /// Stack-placement response and traffic mix.
    pub stack: StackFacts,
    /// The hottest functions `(name, weight)`, heaviest first.
    pub hot_functions: Vec<(String, f64)>,
}

/// The analyzer's verdict for one (benchmark, machine) pair.
#[derive(Debug, Clone)]
pub struct SensitivityReport {
    /// Benchmark name.
    pub bench: String,
    /// Machine model name.
    pub machine: String,
    /// Per-factor scores, in `[env size, link order, text offset]` order.
    pub factors: Vec<FactorScore>,
    /// Summed sensitivity index: the predicted O3/O2-spread ranking key.
    pub predicted_spread: f64,
    /// Per-level detail for `--explain`.
    pub levels: Vec<LevelAnalysis>,
}

/// Metric weights for link-order dispersion: I-cache conflicts dominate,
/// then predictor aliasing, then front-end alignment (entry straddle and
/// loop-body fetch/line footprint).
const ORDER_WEIGHTS: [f64; 7] = [0.30, 0.20, 0.15, 0.05, 0.15, 0.10, 0.05];
/// Metric weights for text-offset dispersion: a uniform shift preserves
/// inter-function deltas, so the alignment metrics carry most of it.
const OFFSET_WEIGHTS: [f64; 7] = [0.15, 0.05, 0.05, 0.15, 0.35, 0.20, 0.05];

fn metrics(f: &ImageFacts) -> [f64; 7] {
    [
        f.l1i.overflow,
        f.btb_conflict,
        f.gshare_conflict,
        f.entry_straddle,
        f.loop_fetch_excess,
        f.loop_line_excess,
        f.itlb.overflow,
    ]
}

/// Weighted range (max − min) of each metric across image variants.
fn dispersion(base: &ImageFacts, variants: &[ImageFacts], weights: &[f64; 7]) -> f64 {
    let mut lo = metrics(base);
    let mut hi = lo;
    for v in variants {
        for (i, m) in metrics(v).iter().enumerate() {
            lo[i] = lo[i].min(*m);
            hi[i] = hi[i].max(*m);
        }
    }
    weights
        .iter()
        .zip(lo.iter().zip(&hi))
        .map(|(w, (l, h))| w * (h - l))
        .sum()
}

/// Weighted range of the **between-level metric difference** across
/// paired image variants.
///
/// The predicted observable is the O3/O2 speedup, a ratio: a setup
/// effect that hits both levels identically cancels out of it. What
/// moves the ratio is the part of the layout response the two images do
/// *not* share, so the dispersion that matters is of
/// `metrics(hi level) − metrics(lo level)` per variant, not of either
/// level's metrics alone.
fn delta_dispersion(
    lo: &LevelAnalysis,
    hi: &LevelAnalysis,
    offsets: bool,
    weights: &[f64; 7],
) -> f64 {
    let series = |l: &LevelAnalysis| -> Vec<[f64; 7]> {
        let variants = if offsets {
            &l.offset_variants
        } else {
            &l.order_variants
        };
        std::iter::once(&l.base)
            .chain(variants)
            .map(metrics)
            .collect()
    };
    let a = series(lo);
    let b = series(hi);
    let mut min_d = [f64::INFINITY; 7];
    let mut max_d = [f64::NEG_INFINITY; 7];
    for (ma, mb) in a.iter().zip(&b) {
        for k in 0..7 {
            let d = mb[k] - ma[k];
            min_d[k] = min_d[k].min(d);
            max_d[k] = max_d[k].max(d);
        }
    }
    if min_d[0] == f64::INFINITY {
        return 0.0;
    }
    weights
        .iter()
        .zip(min_d.iter().zip(&max_d))
        .map(|(w, (l, h))| w * (h - l))
        .sum()
}

/// One level's environment-size response: how much of its hot traffic
/// the moving stack can perturb on this machine.
fn stack_response(m: &MachineConfig, s: &StackFacts) -> f64 {
    s.paired_traffic() * s.memory_intensity() * machine_stack_factor(m, s)
}

/// Total-variation distance between two levels' per-function stack
/// profiles, in `[0, 1]`.
///
/// When the two images put their hot stack traffic in the *same* frames
/// (same functions, same shares — e.g. `O3` only unrolled the loop the
/// traffic lives in), a stack shift moves both levels' bank/set residues
/// in lockstep and the response cancels out of the O3/O2 ratio. Inlining
/// breaks that: callee frames merge into callers, the traffic moves to
/// different frames, and the two levels respond to the same shift
/// differently. The distance measures exactly how much of the traffic
/// moved.
fn stack_divergence(a: &StackFacts, b: &StackFacts) -> f64 {
    let (mut i, mut j) = (0, 0);
    let mut tv = 0.0;
    while i < a.stack_profile.len() || j < b.stack_profile.len() {
        let sa = a.stack_profile.get(i);
        let sb = b.stack_profile.get(j);
        match (sa, sb) {
            (Some((na, va)), Some((nb, vb))) => match na.cmp(nb) {
                std::cmp::Ordering::Equal => {
                    tv += (va - vb).abs();
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => {
                    tv += va;
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    tv += vb;
                    j += 1;
                }
            },
            (Some((_, va)), None) => {
                tv += va;
                i += 1;
            }
            (None, Some((_, vb))) => {
                tv += vb;
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    tv / 2.0
}

/// How strongly this machine converts a moving stack pointer into
/// cycles: banking (if enabled and the grid visits several banks),
/// set-residue spread, and low associativity.
fn machine_stack_factor(m: &MachineConfig, s: &StackFacts) -> f64 {
    let bank = if m.l1d_banks > 1 && m.bank_conflict_penalty > 0 && s.bank_classes > 1 {
        f64::from(m.bank_conflict_penalty).min(4.0) / 4.0
    } else {
        0.0
    };
    let line = if s.line_classes > 1 { 1.0 } else { 0.0 };
    let assoc = 1.0 / f64::from(m.l1d.ways);
    0.5 * bank + 0.3 * line + 0.2 * assoc
}

/// Scores every factor from per-level analyses.
///
/// # Panics
///
/// Panics if `levels` is empty.
#[must_use]
pub fn predict(
    bench: &str,
    machine: &MachineConfig,
    levels: Vec<LevelAnalysis>,
) -> SensitivityReport {
    assert!(!levels.is_empty(), "need at least one analyzed level");

    // The ranked observable is the O3/O2 ratio, so with two levels in
    // hand every factor scores the *between-level difference* of the
    // setup response; a lone level falls back to its own magnitude.
    //
    // * env size: the moving stack perturbs paired stack/memory traffic
    //   (magnitude), but only the part whose frames the levels do *not*
    //   share survives the ratio (stack-profile divergence);
    // * link order / text offset: front-end effects — the between-level
    //   dispersion of the address-derived metrics, scaled by how
    //   branch-bound the hot code is (a straight-line kernel hides a
    //   fetch bubble behind its data stalls; an interpreter does not).
    let (env, link, offset) = if let [lo, .., hi] = levels.as_slice() {
        let interaction = 0.5
            * (lo.stack.paired_traffic() * lo.stack.memory_intensity()
                + hi.stack.paired_traffic() * hi.stack.memory_intensity());
        let density = 0.5 * (lo.stack.branch_density() + hi.stack.branch_density());
        (
            machine_stack_factor(machine, &lo.stack)
                * interaction
                * stack_divergence(&lo.stack, &hi.stack),
            density * delta_dispersion(lo, hi, false, &ORDER_WEIGHTS),
            density * delta_dispersion(lo, hi, true, &OFFSET_WEIGHTS),
        )
    } else {
        let l = &levels[0];
        let density = l.stack.branch_density();
        (
            stack_response(machine, &l.stack),
            density * dispersion(&l.base, &l.order_variants, &ORDER_WEIGHTS),
            density * dispersion(&l.base, &l.offset_variants, &OFFSET_WEIGHTS),
        )
    };

    let s0 = &levels[0].stack;
    let divergence = if let [lo, .., hi] = levels.as_slice() {
        stack_divergence(&lo.stack, &hi.stack)
    } else {
        1.0
    };
    let factors = vec![
        FactorScore {
            factor: Factor::EnvSize,
            score: env,
            rationale: format!(
                "{:.0}% of the hot stack traffic sits in frames the levels do not \
                 share (paired traffic {:.2}); sp visits {} bank / {} line / {} set \
                 classes over the env grid",
                100.0 * divergence,
                s0.paired_traffic(),
                s0.bank_classes,
                s0.line_classes,
                s0.set_classes,
            ),
        },
        FactorScore {
            factor: Factor::LinkOrder,
            score: link,
            rationale: format!(
                "re-linking {} orders moves the between-level L1I / BTB / gshare / \
                 alignment gap; scaled by branch density {:.2} of the hot code",
                levels[0].order_variants.len() + 1,
                s0.branch_density(),
            ),
        },
        FactorScore {
            factor: Factor::TextOffset,
            score: offset,
            rationale: format!(
                "shifting the text over {} offsets moves the between-level \
                 alignment gap; scaled by branch density {:.2} of the hot code",
                levels[0].offset_variants.len() + 1,
                s0.branch_density(),
            ),
        },
    ];
    SensitivityReport {
        bench: bench.to_owned(),
        machine: machine.name.clone(),
        predicted_spread: env + link + offset,
        factors,
        levels,
    }
}

impl SensitivityReport {
    /// The score of one factor.
    ///
    /// # Panics
    ///
    /// Panics if the factor is missing from the report (never happens
    /// for reports built by [`predict`]).
    #[must_use]
    pub fn score(&self, factor: Factor) -> f64 {
        self.factors
            .iter()
            .find(|f| f.factor == factor)
            .expect("factor present")
            .score
    }

    /// The long-form rendering behind `biaslab analyze --explain`:
    /// per-level image facts and hot-function attribution on top of the
    /// factor table.
    #[must_use]
    pub fn explain(&self) -> String {
        use std::fmt::Write as _;
        let mut out = self.to_string();
        for l in &self.levels {
            let _ = writeln!(out, "\n[{}] image facts", l.level.name());
            let _ = writeln!(
                out,
                "  text {} B, {} transfer sites, total hot weight {:.2}",
                l.base.text_bytes,
                l.base.branch_sites.len(),
                l.base.total_weight,
            );
            let _ = writeln!(
                out,
                "  L1I overflow {:.4}  L2 overflow {:.4}  ITLB overflow {:.4}",
                l.base.l1i.overflow, l.base.l2.overflow, l.base.itlb.overflow,
            );
            let _ = writeln!(
                out,
                "  BTB conflict {:.4}  gshare conflict {:.4}  entry straddle {:.4}  page crossers {:.4}",
                l.base.btb_conflict, l.base.gshare_conflict, l.base.entry_straddle, l.base.page_crossers,
            );
            let _ = writeln!(
                out,
                "  loop fetch excess {:.4}  loop line excess {:.4}",
                l.base.loop_fetch_excess, l.base.loop_line_excess,
            );
            let _ = writeln!(
                out,
                "  stack: {} bank / {} line / {} set / {} dtlb classes, paired {:.2}",
                l.stack.bank_classes,
                l.stack.line_classes,
                l.stack.set_classes,
                l.stack.dtlb_classes,
                l.stack.paired_traffic(),
            );
            let hot: Vec<String> = l
                .hot_functions
                .iter()
                .map(|(n, w)| format!("{n} {w:.3}"))
                .collect();
            let _ = writeln!(out, "  hot: {}", hot.join(", "));
        }
        out
    }
}

impl fmt::Display for SensitivityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "sensitivity report: {} on {} (static, no simulation)",
            self.bench, self.machine
        )?;
        for s in &self.factors {
            writeln!(
                f,
                "  {:<11} {:.4}  — {}",
                s.factor.to_string(),
                s.score,
                s.rationale
            )?;
        }
        write!(f, "  predicted-spread index {:.4}", self.predicted_spread)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_facts(x: f64) -> ImageFacts {
        ImageFacts {
            text_bytes: 1024,
            total_weight: 1.0,
            l1i: crate::image::SetPressure {
                histogram: vec![],
                overflow: x,
            },
            l2: crate::image::SetPressure {
                histogram: vec![],
                overflow: 0.0,
            },
            itlb: crate::image::SetPressure {
                histogram: vec![],
                overflow: 0.0,
            },
            branch_sites: vec![],
            btb_conflict: x / 2.0,
            gshare_conflict: 0.0,
            entry_straddle: 0.0,
            loop_fetch_excess: 0.0,
            loop_line_excess: 0.0,
            page_crossers: 0.0,
        }
    }

    fn fake_stack() -> StackFacts {
        StackFacts {
            bank_classes: 4,
            line_classes: 4,
            set_classes: 4,
            dtlb_classes: 1,
            stack_traffic: 1.0,
            mem_traffic: 1.0,
            branch_traffic: 0.5,
            total_traffic: 4.0,
            stack_profile: vec![(("main".into(), 32), 1.0)],
        }
    }

    #[test]
    fn dispersion_is_zero_without_variation() {
        let base = fake_facts(0.25);
        assert_eq!(dispersion(&base, &[fake_facts(0.25)], &ORDER_WEIGHTS), 0.0);
        let d = dispersion(&base, &[fake_facts(0.5)], &ORDER_WEIGHTS);
        assert!(d > 0.0);
    }

    #[test]
    fn predict_sums_factors() {
        let machine = MachineConfig::core2();
        let level = LevelAnalysis {
            level: OptLevel::O2,
            base: fake_facts(0.2),
            order_variants: vec![fake_facts(0.4)],
            offset_variants: vec![fake_facts(0.2)],
            stack: fake_stack(),
            hot_functions: vec![("main".into(), 1.0)],
        };
        let r = predict("demo", &machine, vec![level]);
        assert_eq!(r.factors.len(), 3);
        let sum: f64 = r.factors.iter().map(|f| f.score).sum();
        assert!((sum - r.predicted_spread).abs() < 1e-12);
        assert!(r.score(Factor::LinkOrder) > 0.0);
        assert_eq!(r.score(Factor::TextOffset), 0.0);
        let text = r.explain();
        assert!(text.contains("sensitivity report: demo on core2"));
        assert!(text.contains("image facts"));
    }

    #[test]
    fn env_score_needs_paired_traffic() {
        let machine = MachineConfig::core2();
        let mut stack = fake_stack();
        stack.stack_traffic = 0.0;
        let level = LevelAnalysis {
            level: OptLevel::O3,
            base: fake_facts(0.0),
            order_variants: vec![],
            offset_variants: vec![],
            stack,
            hot_functions: vec![],
        };
        let r = predict("demo", &machine, vec![level]);
        assert_eq!(r.score(Factor::EnvSize), 0.0);
    }
}
