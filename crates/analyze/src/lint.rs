//! `biaslint` — layout-hazard diagnostics with named mechanisms.
//!
//! PR 3's analyzer summarizes a benchmark's layout sensitivity in one
//! score; this module takes the same facts to the diagnostic level. Each
//! *finding* names a concrete hazard the paper's bias factors act
//! through — a hot loop back-edge straddling a fetch window, two hot
//! branches aliasing in the BTB, a hot frame changing stack residue
//! class across the environment grid, an alignment-sensitive function
//! entry — plus two pure-dataflow defects (dead stores, possibly
//! uninitialized reads) surfaced by the new `toolchain::dataflow`
//! passes. Severity is ranked by the PR 3 hotness model; every finding
//! carries a remedy from the paper's fig9/fig10 toolkit (alignment
//! directive, padding, link-order pin, setup randomization).
//!
//! Two disciplines keep the output honest:
//!
//! * **Zero simulation.** Everything here is compile + link + address
//!   arithmetic; the orchestrator's `simulated` counter is untouched
//!   (pinned by tests). Lint is allowed on the critical path of an
//!   experiment precisely because it cannot perturb one.
//! * **Pre-registered remedies.** A layout finding is emitted only if
//!   *statically re-linking with its remedy applied* reduces the hazard
//!   metric (Russo & Zou: confirm exploration with a targeted
//!   experiment, decided in advance). The `ext-lint` experiment then
//!   measures each remedy in simulation and reports precision.
//!
//! Findings render as text ([`LintReport::render`]) or as JSONL
//! ([`LintReport::to_jsonl`], schema checked by
//! [`validate_lint_line`]) for the CI gate and golden snapshots.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::sync::Arc;

use biaslab_core::telemetry::metrics;
use biaslab_core::{Harness, LinkOrder, Orchestrator};
use biaslab_toolchain::dataflow::Lattice;
use biaslab_toolchain::ir::{Op, Terminator};
use biaslab_toolchain::link::{Executable, Linker};
use biaslab_toolchain::obj::CompiledModule;
use biaslab_toolchain::opt::{optimize, OptLevel};
use biaslab_uarch::MachineConfig;

use crate::driver::{env_grid, LEVELS, OFFSETS, ORDERS};
use crate::hotness::{compress, ModuleHotness};
use crate::image::{image_facts, BranchSite, ImageFacts, StackFacts};
use crate::passes::PassManager;

/// Compressed image-weight floor below which a site or function is not
/// "hot" enough to lint (the compression maps even 1%-weight helpers
/// near 0.6, so this keeps genuinely cold code out).
const HOT_WEIGHT: f64 = 0.5;

/// A straddle finding requires the value-range pass to *prove* a loop
/// trip bound of at least this many iterations. Below it the padding
/// remedy cannot beat the entry-alignment cost it introduces; and a
/// data-dependent (unproven) bound is where the static hotness model
/// and the dynamic trip counts diverge, which causal validation
/// punishes.
const MIN_TRIPS: u64 = 8;

/// A BTB pair must collide under at least this many of the 9 re-link
/// grid layouts (base + 4 orders + 4 text offsets) to be reported.
/// Whole-text offsets preserve address differences, so any base
/// collision survives all 4 offset re-links; the bar is therefore "and
/// at least one alternative link order too".
const MIN_GRID_HITS: u32 = 6;

/// Strict-improvement slack for the static pre-registration checks.
const EPS: f64 = 1e-9;

/// A straddle finding's padded re-link must cut the global weighted
/// loop fetch excess to at most this fraction of the base — a marginal
/// static win does not survive the dynamic noise of everything else the
/// pad shifts downstream.
const STRADDLE_MARGIN: f64 = 0.9;

/// Findings reported per class per optimization level.
const PER_CLASS_CAP: usize = 2;

/// The finding taxonomy. Every class names one layout (or dataflow)
/// mechanism and predicts which counter its remedy moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingClass {
    /// A hot loop body spans more fetch windows than its size requires.
    LoopFetchStraddle,
    /// A hot function entry lands mid fetch window.
    EntryAlignment,
    /// Two hot branch sites share a BTB slot across most of the re-link
    /// grid.
    BtbCollision,
    /// The hot stack frame changes L1D bank/line residue class as the
    /// environment size varies.
    StackResidue,
    /// A store to a local is dead on every path (liveness).
    DeadStore,
    /// A load of a local may read uninitialized storage (reaching defs).
    UninitRead,
}

impl FindingClass {
    /// Every class, in severity-tie ordering.
    pub const ALL: [FindingClass; 6] = [
        FindingClass::LoopFetchStraddle,
        FindingClass::EntryAlignment,
        FindingClass::BtbCollision,
        FindingClass::StackResidue,
        FindingClass::DeadStore,
        FindingClass::UninitRead,
    ];

    /// Stable machine-readable name (what `--deny` matches).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FindingClass::LoopFetchStraddle => "loop-fetch-straddle",
            FindingClass::EntryAlignment => "entry-alignment",
            FindingClass::BtbCollision => "btb-collision",
            FindingClass::StackResidue => "stack-residue",
            FindingClass::DeadStore => "dead-store",
            FindingClass::UninitRead => "uninit-read",
        }
    }

    /// Parses a class name.
    #[must_use]
    pub fn parse(s: &str) -> Option<FindingClass> {
        FindingClass::ALL.into_iter().find(|c| c.name() == s)
    }

    /// The counter the remedy is predicted to move (down), or the
    /// validation metric for grid classes. `none` for pure dataflow
    /// defects, which have no layout remedy to measure.
    #[must_use]
    pub fn predicted_metric(self) -> &'static str {
        match self {
            FindingClass::LoopFetchStraddle | FindingClass::EntryAlignment => "fetches",
            FindingClass::BtbCollision => "btb_misses",
            FindingClass::StackResidue => "cycle_range",
            FindingClass::DeadStore | FindingClass::UninitRead => "none",
        }
    }
}

/// A suggested intervention from the paper's fig9/fig10 toolkit.
#[derive(Debug, Clone, PartialEq)]
pub enum Remedy {
    /// Raise the link-time alignment of a symbol (alignment directive).
    Align {
        /// Symbol to align.
        symbol: String,
        /// Requested alignment in bytes.
        align: u32,
    },
    /// Insert padding before a symbol's placement.
    Pad {
        /// Symbol to pad.
        symbol: String,
        /// Padding in bytes.
        bytes: u32,
    },
    /// Pin the link order to a specific named permutation.
    LinkOrderPin {
        /// The order whose static hazard metric is lowest.
        order: LinkOrder,
    },
    /// Randomize the experimental setup (environment / stack placement)
    /// across repetitions instead of holding one layout fixed.
    SetupRandomization,
    /// Not layout-correctable: fix the source.
    CodeFix,
}

/// The canonical CLI token for a link order (what `--order` parses).
#[must_use]
pub fn order_token(order: LinkOrder) -> String {
    match order {
        LinkOrder::Default => "default".to_owned(),
        LinkOrder::Reversed => "reversed".to_owned(),
        LinkOrder::Alphabetical => "alphabetical".to_owned(),
        LinkOrder::Random(seed) => format!("rand:{seed}"),
    }
}

impl Remedy {
    /// Stable machine-readable kind.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Remedy::Align { .. } => "align",
            Remedy::Pad { .. } => "pad",
            Remedy::LinkOrderPin { .. } => "link-order-pin",
            Remedy::SetupRandomization => "setup-randomization",
            Remedy::CodeFix => "code-fix",
        }
    }

    /// Machine-readable argument (empty when the kind says it all).
    #[must_use]
    pub fn arg(&self) -> String {
        match self {
            Remedy::Align { symbol, align } => format!("{symbol}:{align}"),
            Remedy::Pad { symbol, bytes } => format!("{symbol}:{bytes}"),
            Remedy::LinkOrderPin { order } => order_token(*order),
            Remedy::SetupRandomization | Remedy::CodeFix => String::new(),
        }
    }

    /// Human-readable description.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            Remedy::Align { symbol, align } => format!("align `{symbol}` to {align} B"),
            Remedy::Pad { symbol, bytes } => format!("pad `{symbol}` by {bytes} B"),
            Remedy::LinkOrderPin { order } => {
                format!("pin link order to `{}`", order_token(*order))
            }
            Remedy::SetupRandomization => "randomize the setup across repetitions".to_owned(),
            Remedy::CodeFix => "fix at the source level".to_owned(),
        }
    }
}

/// One structured finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Hazard class.
    pub class: FindingClass,
    /// Optimization level of the image the hazard was found in.
    pub level: OptLevel,
    /// The function the hazard is attributed to.
    pub function: String,
    /// Hotness-model severity (finite, `>= 0`; higher is worse).
    pub severity: f64,
    /// Human-readable mechanism statement with concrete addresses.
    pub detail: String,
    /// Suggested intervention.
    pub remedy: Remedy,
}

/// Everything one `biaslint` run over a benchmark produced.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Benchmark name.
    pub bench: String,
    /// Machine model name.
    pub machine: String,
    /// Findings, most severe first.
    pub findings: Vec<Finding>,
    /// Distinct `(pass, function)` dataflow computations performed.
    pub passes_run: u64,
    /// Functions with at least one pass run.
    pub functions_analyzed: u64,
}

impl LintReport {
    /// Whether any finding has the given class.
    #[must_use]
    pub fn has_class(&self, class: FindingClass) -> bool {
        self.findings.iter().any(|f| f.class == class)
    }

    /// Renders the report as human-readable text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "biaslint: {} on {} — {} finding{} (passes run {}, functions analyzed {})",
            self.bench,
            self.machine,
            self.findings.len(),
            if self.findings.len() == 1 { "" } else { "s" },
            self.passes_run,
            self.functions_analyzed,
        );
        for (i, f) in self.findings.iter().enumerate() {
            let _ = writeln!(
                out,
                "  {:>2}. [{}] {:<20} sev {:.4}  fn {} — remedy: {}",
                i + 1,
                f.level.name(),
                f.class.name(),
                f.severity,
                f.function,
                f.remedy.describe(),
            );
            let _ = writeln!(out, "      {}", f.detail);
        }
        out
    }

    /// Renders the report as JSONL: one `ev:lint` header line followed
    /// by one `ev:finding` line per finding. Every line satisfies
    /// [`validate_lint_line`].
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"v\":1,\"ev\":\"lint\",\"bench\":\"{}\",\"machine\":\"{}\",\"findings\":{},\"passes_run\":{},\"functions_analyzed\":{}}}",
            self.bench,
            self.machine,
            self.findings.len(),
            self.passes_run,
            self.functions_analyzed,
        );
        for f in &self.findings {
            let _ = writeln!(
                out,
                "{{\"v\":1,\"ev\":\"finding\",\"bench\":\"{}\",\"machine\":\"{}\",\"level\":\"{}\",\"class\":\"{}\",\"function\":\"{}\",\"severity\":{:.4},\"metric\":\"{}\",\"remedy\":\"{}\",\"arg\":\"{}\",\"detail\":\"{}\"}}",
                self.bench,
                self.machine,
                f.level.name(),
                f.class.name(),
                f.function,
                f.severity,
                f.class.predicted_metric(),
                f.remedy.kind(),
                f.remedy.arg(),
                sanitize(&f.detail),
            );
        }
        out
    }
}

/// JSON string bodies stay quote- and backslash-free by construction;
/// this enforces it against future detail-format drift.
fn sanitize(s: &str) -> String {
    s.replace(['"', '\\'], "'")
}

/// Validates one line of [`LintReport::to_jsonl`] output against the
/// findings schema (`v:1`; `ev:lint` headers and `ev:finding` records
/// with their required keys in canonical order; known class names;
/// finite non-negative severity).
///
/// # Errors
///
/// Returns a message naming the first violated rule.
pub fn validate_lint_line(line: &str) -> Result<(), String> {
    if !line.starts_with('{') || !line.ends_with('}') {
        return Err("line is not a JSON object".to_owned());
    }
    if !line.starts_with("{\"v\":1,") {
        return Err("missing schema version v:1".to_owned());
    }
    let ev = extract_str(line, "ev").ok_or("missing ev")?;
    let keys: &[&str] = match ev.as_str() {
        "lint" => &[
            "bench",
            "machine",
            "findings",
            "passes_run",
            "functions_analyzed",
        ],
        "finding" => &[
            "bench", "machine", "level", "class", "function", "severity", "metric", "remedy",
            "arg", "detail",
        ],
        other => return Err(format!("unknown event `{other}`")),
    };
    let mut pos = 0;
    for key in keys {
        let needle = format!("\"{key}\":");
        match line[pos..].find(&needle) {
            Some(i) => pos += i + needle.len(),
            None => return Err(format!("missing or out-of-order key `{key}`")),
        }
    }
    if ev == "finding" {
        let class = extract_str(line, "class").ok_or("missing class")?;
        if FindingClass::parse(&class).is_none() {
            return Err(format!("unknown finding class `{class}`"));
        }
        let sev = extract_scalar(line, "severity").ok_or("missing severity")?;
        let sev: f64 = sev
            .parse()
            .map_err(|_| format!("severity `{sev}` is not a number"))?;
        if !sev.is_finite() || sev < 0.0 {
            return Err(format!("severity {sev} out of range"));
        }
    }
    Ok(())
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":\"");
    let start = line.find(&needle)? + needle.len();
    let end = line[start..].find('"')?;
    Some(line[start..start + end].to_owned())
}

fn extract_scalar(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let end = line[start..].find([',', '}']).unwrap_or(line.len() - start);
    Some(line[start..start + end].to_owned())
}

// ---------------------------------------------------------------------------
// The lint driver
// ---------------------------------------------------------------------------

/// Function symbols in the text with their compressed hotness:
/// `(name, addr, size, weight)`, symbol order.
fn text_functions(exe: &Executable, hot: &ModuleHotness) -> Vec<(String, u32, u32, f64)> {
    let text_end = exe.text_base() + exe.text_size();
    exe.symbols()
        .iter()
        .filter(|s| s.addr >= exe.text_base() && s.addr < text_end && s.size > 0)
        .map(|s| (s.name.clone(), s.addr, s.size, hot.image_weight(&s.name)))
        .collect()
}

fn containing(funcs: &[(String, u32, u32, f64)], pc: u32) -> Option<&(String, u32, u32, f64)> {
    funcs
        .iter()
        .find(|&&(_, addr, size, _)| pc >= addr && pc < addr + size)
}

/// Everything the per-level detectors need: the optimized module's
/// passes and hotness, the base image, and the 8-layout re-link grid.
struct LevelLint<'a> {
    machine: &'a MachineConfig,
    level: OptLevel,
    entry: &'a str,
    hot: &'a ModuleHotness,
    pm: &'a PassManager<'a>,
    base: &'a ImageFacts,
    funcs: &'a [(String, u32, u32, f64)],
    variants: &'a [(Arc<Executable>, ImageFacts)],
    cm: &'a CompiledModule,
    default_order: &'a [usize],
}

impl LevelLint<'_> {
    /// Statically re-links with a layout ablation applied and returns
    /// the resulting image facts (the pre-registration check; compile +
    /// link only).
    fn relink(&self, ablate: impl FnOnce(Linker) -> Linker) -> Result<ImageFacts, String> {
        let linker = ablate(Linker::new().object_order(self.default_order.to_vec()));
        let exe = linker
            .link(self.cm, self.entry)
            .map_err(|e| format!("ablated re-link failed: {e:?}"))?;
        Ok(image_facts(&exe, self.hot, self.machine))
    }

    /// Largest loop trip bound the value-range pass can prove for
    /// `function`, if any loop's bound folds to a constant.
    fn trip_bound(&self, function: &str) -> Option<u64> {
        let fi = self.pm.find(function)?;
        let f = self.pm.function(fi);
        if f.loops.is_empty() {
            return None;
        }
        let ranges = self.pm.ranges(fi);
        f.loops
            .iter()
            .filter_map(|lp| {
                let hb = lp.header.0 as usize;
                let block = f.blocks.get(hb)?;
                let Terminator::Branch { a, b, .. } = &block.term else {
                    return None;
                };
                let ind = block.ops.iter().find_map(|op| match *op {
                    Op::LoadLocal {
                        dst,
                        local,
                        offset: 0,
                    } if local == lp.induction => Some(dst),
                    _ => None,
                })?;
                let bound = if *a == ind {
                    *b
                } else if *b == ind {
                    *a
                } else {
                    return None;
                };
                let vals = ranges.vals_in_block(f, hb);
                let n = vals.get(bound.0 as usize)?.as_const()?;
                let init = match ranges.cell_in(hb, lp.induction, 0) {
                    Lattice::Const(c) => c,
                    Lattice::Range { lo, .. } => lo,
                    _ => 0,
                };
                Some(n.saturating_sub(init).max(1))
            })
            .max()
    }

    /// Class 1: hot loop bodies spanning more fetch windows than their
    /// size requires. Remedy: pad the containing symbol so the loop
    /// header starts a window.
    fn loop_fetch_straddle(&self, out: &mut Vec<Finding>) -> Result<(), String> {
        let fb = self.machine.fetch_bytes;
        // Heaviest-excess straddling back edge per function.
        struct Cand {
            target: u32,
            pc: u32,
            actual: u32,
            best: u32,
            weight: f64,
        }
        let mut cands: BTreeMap<usize, Cand> = BTreeMap::new();
        for s in &self.base.branch_sites {
            if s.target > s.pc || s.weight < HOT_WEIGHT {
                continue;
            }
            let bytes = s.pc + 4 - s.target;
            let actual = s.pc / fb - s.target / fb + 1;
            let best = bytes.div_ceil(fb);
            if actual <= best {
                continue;
            }
            let Some(fi) = self
                .funcs
                .iter()
                .position(|&(_, addr, size, _)| s.pc >= addr && s.pc < addr + size)
            else {
                continue;
            };
            let excess = actual - best;
            let replace = match cands.get(&fi) {
                Some(c) => excess > c.actual - c.best,
                None => true,
            };
            if replace {
                cands.insert(
                    fi,
                    Cand {
                        target: s.target,
                        pc: s.pc,
                        actual,
                        best,
                        weight: s.weight,
                    },
                );
            }
        }
        let mut ranked: Vec<(usize, Cand)> = cands.into_iter().collect();
        ranked.sort_by(|a, b| {
            let sa = a.1.weight * f64::from(a.1.actual - a.1.best);
            let sb = b.1.weight * f64::from(b.1.actual - b.1.best);
            sb.partial_cmp(&sa)
                .expect("weights are finite")
                .then(a.0.cmp(&b.0))
        });

        let mut emitted = 0;
        for (fi, c) in ranked {
            if emitted >= PER_CLASS_CAP {
                break;
            }
            let (name, faddr, _, _) = &self.funcs[fi];
            // Value-range gate: the padding remedy only pays if the loop
            // provably spins, so the constant-propagation pass must fold
            // the trip bound to >= MIN_TRIPS. Data-dependent bounds are
            // exactly where the static hotness model and the dynamic
            // trip counts diverge — findings there refute under causal
            // validation, so they are not findings.
            let Some(trips) = self.trip_bound(name) else {
                continue;
            };
            if trips < MIN_TRIPS {
                continue;
            }
            let delta = (fb - c.target % fb) % fb;
            if delta == 0 {
                continue;
            }
            // Pre-registration: the padded re-link must cut the global
            // weighted loop fetch excess by a real margin without
            // trading it for entry misalignment elsewhere (the pad
            // shifts every downstream symbol), or the finding is not
            // evidence.
            let ablated = self.relink(|l| l.pad_symbol(name, delta))?;
            if ablated.loop_fetch_excess + EPS >= self.base.loop_fetch_excess * STRADDLE_MARGIN
                || ablated.entry_straddle > self.base.entry_straddle + EPS
            {
                continue;
            }
            let excess = c.actual - c.best;
            let trips_note = format!("proven trip bound {trips}");
            out.push(Finding {
                class: FindingClass::LoopFetchStraddle,
                level: self.level,
                function: name.clone(),
                severity: c.weight * (f64::from(excess) / f64::from(c.best)).min(1.0),
                detail: format!(
                    "hot loop back-edge at {name}+{:#x} straddles a fetch line: body \
                     [{:#x},{:#x}) spans {} {fb}-byte windows (best {}), header at offset \
                     {} mod {fb}; {trips_note}",
                    c.pc - faddr,
                    c.target,
                    c.pc + 4,
                    c.actual,
                    c.best,
                    c.target % fb,
                ),
                remedy: Remedy::Pad {
                    symbol: name.clone(),
                    bytes: delta,
                },
            });
            emitted += 1;
        }
        Ok(())
    }

    /// Class 2: hot function entries landing mid fetch window. Remedy:
    /// raise the symbol's alignment to the fetch width.
    fn entry_alignment(&self, out: &mut Vec<Finding>) -> Result<(), String> {
        let fb = self.machine.fetch_bytes;
        let mut cands: Vec<&(String, u32, u32, f64)> = self
            .funcs
            .iter()
            .filter(|&&(_, addr, _, w)| w >= HOT_WEIGHT && addr % fb != 0)
            .collect();
        cands.sort_by(|a, b| b.3.partial_cmp(&a.3).expect("finite").then(a.0.cmp(&b.0)));

        let mut emitted = 0;
        for &(ref name, addr, _, w) in cands {
            if emitted >= PER_CLASS_CAP {
                break;
            }
            let ablated = self.relink(|l| l.align_symbol(name, fb))?;
            // Pre-registration: the alignment directive must reduce the
            // weighted entry straddle without trading it for loop excess
            // (downstream symbols re-snap and can move either way).
            if ablated.entry_straddle + EPS >= self.base.entry_straddle
                || ablated.loop_fetch_excess > self.base.loop_fetch_excess + EPS
            {
                continue;
            }
            let r = addr % fb;
            let dcpi = 100.0 * (self.base.entry_straddle - ablated.entry_straddle);
            out.push(Finding {
                class: FindingClass::EntryAlignment,
                level: self.level,
                function: name.clone(),
                severity: w * f64::from(r) / f64::from(fb),
                detail: format!(
                    "function entry alignment-sensitive: {name} at {addr:#x} enters {r} bytes \
                     into a {fb}-byte fetch window; predicted ΔCPI {dcpi:.2}%",
                ),
                remedy: Remedy::Align {
                    symbol: name.clone(),
                    align: fb,
                },
            });
            emitted += 1;
        }
        Ok(())
    }

    /// Function pairs whose taken-branch sites can dynamically
    /// *alternate*: both run inside one loop's steady state (the
    /// loop-owning function together with every callee invoked from a
    /// loop block). A shared BTB slot only churns when its two sites
    /// interleave; phase-separated executions cost one compulsory miss
    /// each and never again, which no link order can improve.
    fn interleaved(&self) -> BTreeSet<(&str, &str)> {
        let module = self.pm.module();
        let mut set = BTreeSet::new();
        for (fi, f) in module.functions.iter().enumerate() {
            if f.loops.is_empty() {
                continue;
            }
            let cfg = self.pm.cfg(fi);
            let mut group: Vec<&str> = vec![f.name.as_str()];
            for (bi, block) in f.blocks.iter().enumerate() {
                if cfg.freq.get(bi).copied().unwrap_or(1.0) <= 1.0 + EPS {
                    continue;
                }
                for op in &block.ops {
                    if let Op::Call { func, .. } = op {
                        group.push(module.functions[func.0 as usize].name.as_str());
                    }
                }
            }
            group.sort_unstable();
            group.dedup();
            for (i, a) in group.iter().enumerate() {
                for b in &group[i..] {
                    set.insert((*a, *b));
                }
            }
        }
        set
    }

    /// Class 3: hot *interleaved* branch pairs sharing a BTB slot across
    /// most of the re-link grid. Remedy: pin the link order with the
    /// lowest static conflict mass.
    fn btb_collision(&self, out: &mut Vec<Finding>) {
        // Remedy first: the best alternative order, by static BTB
        // conflict. No improving order → nothing to pre-register → no
        // findings of this class.
        let Some((best_order, best_conf)) = ORDERS
            .iter()
            .zip(self.variants.iter().take(ORDERS.len()))
            .map(|(o, (_, f))| (*o, f.btb_conflict))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        else {
            return;
        };
        if best_conf + EPS >= self.base.btb_conflict {
            return;
        }

        let mut buckets: BTreeMap<u32, Vec<&BranchSite>> = BTreeMap::new();
        for s in &self.base.branch_sites {
            if s.weight >= HOT_WEIGHT {
                buckets
                    .entry(self.machine.branch.btb_index(s.pc))
                    .or_default()
                    .push(s);
            }
        }

        struct Pair {
            slot: u32,
            a: (String, u32),
            b: (String, u32),
            hits: u32,
            severity: f64,
        }
        let il = self.interleaved();
        let mut pairs: Vec<Pair> = Vec::new();
        for (&slot, sites) in &buckets {
            if sites.len() < 2 {
                continue;
            }
            let mut sorted: Vec<&&BranchSite> = sites.iter().collect();
            sorted.sort_by(|x, y| {
                y.weight
                    .partial_cmp(&x.weight)
                    .expect("finite")
                    .then(x.pc.cmp(&y.pc))
            });
            // The heaviest pair in the slot that can actually alternate.
            let Some((s1, s2)) = (0..sorted.len())
                .flat_map(|i| (i + 1..sorted.len()).map(move |j| (i, j)))
                .map(|(i, j)| (sorted[i], sorted[j]))
                .find(|(x, y)| {
                    match (containing(self.funcs, x.pc), containing(self.funcs, y.pc)) {
                        (Some((fx, ..)), Some((fy, ..))) => {
                            let key = if fx <= fy {
                                (fx.as_str(), fy.as_str())
                            } else {
                                (fy.as_str(), fx.as_str())
                            };
                            il.contains(&key)
                        }
                        _ => false,
                    }
                })
            else {
                continue;
            };
            let Some((fa, aa, _, _)) = containing(self.funcs, s1.pc) else {
                continue;
            };
            let Some((fb2, ab, _, _)) = containing(self.funcs, s2.pc) else {
                continue;
            };
            let (off_a, off_b) = (s1.pc - aa, s2.pc - ab);
            // Stability: re-locate both logical sites (function + offset)
            // in each grid layout and count preserved collisions.
            let mut hits = 1;
            for (exe, _) in self.variants {
                let (Some(sa), Some(sb)) = (exe.symbol(fa), exe.symbol(fb2)) else {
                    continue;
                };
                if self.machine.branch.btb_index(sa.addr + off_a)
                    == self.machine.branch.btb_index(sb.addr + off_b)
                {
                    hits += 1;
                }
            }
            if hits < MIN_GRID_HITS {
                continue;
            }
            pairs.push(Pair {
                slot,
                a: (fa.clone(), off_a),
                b: (fb2.clone(), off_b),
                hits,
                severity: s2.weight * f64::from(hits) / 9.0,
            });
        }
        pairs.sort_by(|x, y| {
            y.severity
                .partial_cmp(&x.severity)
                .expect("finite")
                .then(x.slot.cmp(&y.slot))
        });
        for p in pairs.into_iter().take(PER_CLASS_CAP) {
            out.push(Finding {
                class: FindingClass::BtbCollision,
                level: self.level,
                function: p.a.0.clone(),
                severity: p.severity,
                detail: format!(
                    "hot interleaved branches {}+{:#x} and {}+{:#x} collide in the BTB \
                     (slot {}) under {}/9 of the re-link grid",
                    p.a.0, p.a.1, p.b.0, p.b.1, p.slot, p.hits,
                ),
                remedy: Remedy::LinkOrderPin { order: best_order },
            });
        }
    }

    /// Class 4: the initial stack placement changes L1D residue class
    /// across the environment grid while hot traffic is stack-paired.
    /// Remedy: setup randomization (the paper's own prescription).
    fn stack_residue(&self, stack: &StackFacts, out: &mut Vec<Finding>) {
        let spread = stack.bank_classes.max(stack.line_classes);
        if spread <= 1 || stack.stack_traffic <= 0.0 {
            return;
        }
        let paired = stack.paired_traffic();
        if paired < 0.1 {
            return;
        }
        let Some(((name, frame), share)) = stack
            .stack_profile
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(b.0.cmp(&a.0)))
        else {
            return;
        };
        out.push(Finding {
            class: FindingClass::StackResidue,
            level: self.level,
            function: name.clone(),
            severity: (paired * stack.memory_intensity()).sqrt()
                * (f64::from(spread) / 16.0).min(1.0),
            detail: format!(
                "frame of hot fn {name} ({frame} B, {:.0}% of hot stack traffic) changes stack \
                 residue class across the env grid: {} bank / {} line-offset / {} set classes; \
                 {:.0}% of hot memory traffic is stack-paired",
                share * 100.0,
                stack.bank_classes,
                stack.line_classes,
                stack.set_classes,
                paired * 100.0,
            ),
            remedy: Remedy::SetupRandomization,
        });
    }

    /// Classes 5 and 6: pure dataflow defects from the liveness and
    /// reaching-definitions passes. Not layout hazards — no causal
    /// remedy to measure — but they ride the same pass manager and make
    /// wrong-data bugs visible next to wrong-measurement ones.
    fn dataflow_defects(&self, out: &mut Vec<Finding>) {
        let (mut dead, mut uninit) = (0usize, 0usize);
        for (fi, fh) in self.hot.functions.iter().enumerate() {
            let w = compress(fh.weight);
            let f = self.pm.function(fi);
            if dead < PER_CLASS_CAP {
                for (bi, oi) in self.pm.liveness(fi).dead_stores(f) {
                    if dead >= PER_CLASS_CAP {
                        break;
                    }
                    let Some(Op::StoreLocal { local, offset, .. }) =
                        f.blocks[bi as usize].ops.get(oi as usize)
                    else {
                        continue;
                    };
                    out.push(Finding {
                        class: FindingClass::DeadStore,
                        level: self.level,
                        function: fh.name.clone(),
                        severity: 0.02 + 0.1 * w,
                        detail: format!(
                            "store to local {}+{} at bb{bi} op {oi} in {} is dead on every \
                             path to exit",
                            local.0, offset, fh.name,
                        ),
                        remedy: Remedy::CodeFix,
                    });
                    dead += 1;
                }
            }
            if uninit < PER_CLASS_CAP {
                for r in self.pm.reaching(fi).maybe_uninit_reads(f) {
                    if uninit >= PER_CLASS_CAP {
                        break;
                    }
                    out.push(Finding {
                        class: FindingClass::UninitRead,
                        level: self.level,
                        function: fh.name.clone(),
                        severity: 0.05 + 0.2 * w,
                        detail: format!(
                            "load of local {}+{} at bb{} op {} in {} may read uninitialized \
                             storage",
                            r.local.0, r.offset, r.block, r.op, fh.name,
                        ),
                        remedy: Remedy::CodeFix,
                    });
                    uninit += 1;
                }
            }
        }
    }
}

/// Lints one benchmark (via its measurement harness) on `machine`.
/// Pure compile + link + dataflow: no process is loaded, no instruction
/// executes (the orchestrator's `simulated` counter is untouched).
///
/// # Errors
///
/// Returns a message if any static link fails.
pub fn lint_harness(harness: &Harness, machine: &MachineConfig) -> Result<LintReport, String> {
    let bench = harness.benchmark();
    let names = harness.object_names();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let default_order = LinkOrder::Default.resolve(&name_refs);
    let grid = env_grid();

    let mut findings = Vec::new();
    let (mut passes_run, mut functions_analyzed) = (0u64, 0u64);
    for level in LEVELS {
        let optimized = optimize(bench.module(), level);
        let hot = ModuleHotness::of(&optimized, bench.entry(), level);
        let pm = PassManager::new(&optimized, level);
        let cm = harness.compiled(level);

        let link = |order: &[usize], offset: u32| {
            harness
                .executable(level, order, offset)
                .map_err(|e| format!("{}/{}: link failed: {e:?}", bench.name(), level.name()))
        };
        let base_exe = link(&default_order, 0)?;
        let base = image_facts(&base_exe, &hot, machine);
        let funcs = text_functions(&base_exe, &hot);
        let mut variants = Vec::with_capacity(ORDERS.len() + OFFSETS.len());
        for order in ORDERS {
            let exe = link(&order.resolve(&name_refs), 0)?;
            let facts = image_facts(&exe, &hot, machine);
            variants.push((exe, facts));
        }
        for offset in OFFSETS {
            let exe = link(&default_order, offset)?;
            let facts = image_facts(&exe, &hot, machine);
            variants.push((exe, facts));
        }
        let stack = StackFacts::of(&hot, machine, &grid);

        let ctx = LevelLint {
            machine,
            level,
            entry: bench.entry(),
            hot: &hot,
            pm: &pm,
            base: &base,
            funcs: &funcs,
            variants: &variants,
            cm: &cm,
            default_order: &default_order,
        };
        ctx.loop_fetch_straddle(&mut findings)?;
        ctx.entry_alignment(&mut findings)?;
        ctx.btb_collision(&mut findings);
        ctx.stack_residue(&stack, &mut findings);
        ctx.dataflow_defects(&mut findings);

        passes_run += pm.passes_run();
        functions_analyzed += pm.functions_analyzed();
    }

    findings.sort_by(|a, b| {
        b.severity
            .partial_cmp(&a.severity)
            .expect("severities are finite")
            .then_with(|| a.class.name().cmp(b.class.name()))
            .then_with(|| a.level.name().cmp(b.level.name()))
            .then_with(|| a.function.cmp(&b.function))
            .then_with(|| a.detail.cmp(&b.detail))
    });

    metrics()
        .counter("analyze.lint.findings")
        .add(findings.len() as u64);
    metrics().counter("analyze.lint.passes_run").add(passes_run);
    metrics()
        .counter("analyze.lint.functions_analyzed")
        .add(functions_analyzed);

    Ok(LintReport {
        bench: bench.name().to_owned(),
        machine: machine.name.clone(),
        findings,
        passes_run,
        functions_analyzed,
    })
}

/// Lints a benchmark by name, sharing the process-wide harness cache.
///
/// # Errors
///
/// Returns a message for unknown benchmarks or failed links.
pub fn lint_benchmark(bench: &str, machine: &MachineConfig) -> Result<LintReport, String> {
    let harness = Orchestrator::global()
        .harness(bench)
        .ok_or_else(|| format!("unknown benchmark `{bench}` — `biaslab list` shows the suite"))?;
    lint_harness(&harness, machine)
}

/// Lints the whole suite on `machine`, in suite order.
///
/// # Errors
///
/// Returns the first lint failure.
pub fn lint_suite(machine: &MachineConfig) -> Result<Vec<LintReport>, String> {
    biaslab_workloads::suite()
        .iter()
        .map(|b| lint_benchmark(b.name(), machine))
        .collect()
}

/// The whole suite's reports as one JSONL stream (the golden-snapshot
/// and CI-gate format).
///
/// # Errors
///
/// Returns the first lint failure.
pub fn lint_suite_jsonl(machine: &MachineConfig) -> Result<String, String> {
    Ok(lint_suite(machine)?
        .iter()
        .map(LintReport::to_jsonl)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lints_without_simulating() {
        let before = Orchestrator::global().stats().simulated;
        let r = lint_benchmark("perlbench", &MachineConfig::core2()).expect("lints");
        assert_eq!(r.bench, "perlbench");
        assert_eq!(r.machine, "core2");
        assert!(r.passes_run > 0, "lint must exercise the pass manager");
        assert!(r.functions_analyzed > 0);
        for f in &r.findings {
            assert!(f.severity.is_finite() && f.severity >= 0.0);
            assert!(!f.detail.is_empty());
        }
        for w in r.findings.windows(2) {
            assert!(
                w[0].severity >= w[1].severity,
                "findings sorted by severity"
            );
        }
        assert_eq!(
            Orchestrator::global().stats().simulated,
            before,
            "biaslint must not simulate"
        );
    }

    #[test]
    fn telemetry_counters_are_exported() {
        let before = metrics().counter("analyze.lint.passes_run").get();
        let r = lint_benchmark("milc", &MachineConfig::core2()).expect("lints");
        let after = metrics().counter("analyze.lint.passes_run").get();
        assert!(
            after - before >= r.passes_run,
            "lint cost must reach the metrics registry"
        );
    }

    #[test]
    fn jsonl_lines_all_validate() {
        let r = lint_benchmark("mcf", &MachineConfig::o3cpu()).expect("lints");
        let jsonl = r.to_jsonl();
        assert!(!jsonl.is_empty());
        for line in jsonl.lines() {
            validate_lint_line(line).unwrap_or_else(|e| panic!("{e}: {line}"));
        }
        assert!(jsonl.lines().next().unwrap().contains("\"ev\":\"lint\""));
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_lint_line("not json").is_err());
        assert!(validate_lint_line("{\"v\":2,\"ev\":\"lint\"}").is_err());
        assert!(validate_lint_line("{\"v\":1,\"ev\":\"mystery\"}").is_err());
        // Out-of-order keys.
        assert!(validate_lint_line(
            "{\"v\":1,\"ev\":\"lint\",\"machine\":\"core2\",\"bench\":\"x\",\"findings\":0,\
             \"passes_run\":0,\"functions_analyzed\":0}"
        )
        .is_err());
        // Unknown class.
        assert!(validate_lint_line(
            "{\"v\":1,\"ev\":\"finding\",\"bench\":\"x\",\"machine\":\"core2\",\"level\":\"O2\",\
             \"class\":\"bogus\",\"function\":\"f\",\"severity\":0.5,\"metric\":\"none\",\
             \"remedy\":\"code-fix\",\"arg\":\"\",\"detail\":\"d\"}"
        )
        .is_err());
        // Valid header.
        assert!(validate_lint_line(
            "{\"v\":1,\"ev\":\"lint\",\"bench\":\"x\",\"machine\":\"core2\",\"findings\":0,\
             \"passes_run\":0,\"functions_analyzed\":0}"
        )
        .is_ok());
    }

    #[test]
    fn class_names_round_trip() {
        for c in FindingClass::ALL {
            assert_eq!(FindingClass::parse(c.name()), Some(c));
        }
        assert_eq!(FindingClass::parse("nonesuch"), None);
    }

    #[test]
    fn report_renders_every_finding() {
        let r = lint_benchmark("bzip2", &MachineConfig::core2()).expect("lints");
        let text = r.render();
        assert!(text.contains("biaslint: bzip2 on core2"));
        for f in &r.findings {
            assert!(text.contains(f.class.name()));
        }
    }

    #[test]
    fn suite_jsonl_is_schema_clean() {
        let jsonl = lint_suite_jsonl(&MachineConfig::core2()).expect("suite lints");
        let mut headers = 0;
        for line in jsonl.lines() {
            validate_lint_line(line).unwrap_or_else(|e| panic!("{e}: {line}"));
            if line.contains("\"ev\":\"lint\"") {
                headers += 1;
            }
        }
        assert_eq!(headers, biaslab_workloads::suite().len());
    }
}
