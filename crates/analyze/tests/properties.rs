//! Property tests for the layer-1 control-flow analyses: the production
//! bitset/worklist implementations must agree with naive O(n²) (and
//! worse) reference implementations built straight from the textbook
//! definitions, over arbitrary generated CFGs.

use biaslab_analyze::cfg::{natural_loops, Cfg, CfgAnalysis, Dominators, NaturalLoop, LOOP_BASE};
use biaslab_toolchain::ir::{Block, BlockId, Function, Terminator, Val};
use proptest::prelude::*;

/// Builds a function whose block `i` gets terminator `i` of `terms`.
fn skeleton(terms: Vec<Terminator>) -> Function {
    Function {
        name: "gen".into(),
        param_count: 0,
        returns_value: false,
        locals: vec![],
        blocks: terms
            .into_iter()
            .map(|term| Block { ops: vec![], term })
            .collect(),
        loops: vec![],
        next_val: 0,
    }
}

/// Decodes `(kind, t1, t2)` triples into a well-formed CFG of `n` blocks:
/// kind 0 returns, kind 1 jumps to `t1 % n`, kind 2 branches to
/// `t1 % n` / `t2 % n`.
fn decode(spec: &[(u8, u32, u32)]) -> Function {
    let n = spec.len() as u32;
    let terms = spec
        .iter()
        .map(|&(kind, t1, t2)| match kind % 3 {
            0 => Terminator::Ret { value: None },
            1 => Terminator::Jump(BlockId(t1 % n)),
            _ => Terminator::Branch {
                cond: biaslab_isa::Cond::Eq,
                a: Val(0),
                b: Val(0),
                then_block: BlockId(t1 % n),
                else_block: BlockId(t2 % n),
            },
        })
        .collect();
    skeleton(terms)
}

/// Reachability from the entry with one block removed — the primitive
/// behind the path-based dominator definition.
fn reachable_avoiding(cfg: &Cfg, avoid: Option<usize>) -> Vec<bool> {
    let mut seen = vec![false; cfg.n];
    if avoid == Some(0) {
        return seen;
    }
    let mut stack = vec![0usize];
    seen[0] = true;
    while let Some(b) = stack.pop() {
        for &s in &cfg.succs[b] {
            if !seen[s] && avoid != Some(s) {
                seen[s] = true;
                stack.push(s);
            }
        }
    }
    seen
}

/// The textbook definition: `d` dominates `b` iff both are reachable and
/// every entry→`b` path passes through `d` (equivalently, removing `d`
/// disconnects `b`, or `d == b`).
fn naive_dominates(cfg: &Cfg, d: usize, b: usize) -> bool {
    if !cfg.reachable[d] || !cfg.reachable[b] {
        return false;
    }
    d == b || !reachable_avoiding(cfg, Some(d))[b]
}

/// Natural loops from the definition: for every edge `a → h` with `h`
/// dominating `a`, the loop body is `h` plus every reachable block that
/// can reach `a` without passing through `h`; loops sharing a header
/// merge.
fn naive_loops(cfg: &Cfg) -> Vec<NaturalLoop> {
    let mut loops: Vec<NaturalLoop> = Vec::new();
    for a in 0..cfg.n {
        if !cfg.reachable[a] {
            continue;
        }
        for &h in &cfg.succs[a] {
            if !naive_dominates(cfg, h, a) {
                continue;
            }
            let mut blocks: Vec<usize> = (0..cfg.n)
                .filter(|&x| {
                    cfg.reachable[x] && x != h && {
                        // Forward DFS from x to a, never entering h.
                        let mut seen = vec![false; cfg.n];
                        let mut stack = vec![x];
                        seen[x] = true;
                        let mut hit = x == a;
                        while let Some(y) = stack.pop() {
                            for &s in &cfg.succs[y] {
                                if s != h && !seen[s] {
                                    seen[s] = true;
                                    hit |= s == a;
                                    stack.push(s);
                                }
                            }
                        }
                        hit
                    }
                })
                .collect();
            blocks.push(h);
            blocks.sort_unstable();
            if let Some(existing) = loops.iter_mut().find(|l| l.header == h) {
                existing.back_edges.push(a);
                existing.blocks.extend(&blocks);
                existing.blocks.sort_unstable();
                existing.blocks.dedup();
            } else {
                loops.push(NaturalLoop {
                    header: h,
                    back_edges: vec![a],
                    blocks,
                });
            }
        }
    }
    for l in &mut loops {
        l.back_edges.sort_unstable();
        l.back_edges.dedup();
    }
    loops.sort_by_key(|l| l.header);
    loops
}

proptest! {
    #[test]
    fn dominators_match_the_path_based_definition(
        spec in proptest::collection::vec((any::<u8>(), any::<u32>(), any::<u32>()), 1..12),
    ) {
        let f = decode(&spec);
        let cfg = Cfg::of(&f);
        let dom = Dominators::of(&cfg);
        for d in 0..cfg.n {
            for b in 0..cfg.n {
                prop_assert_eq!(
                    dom.dominates(d, b),
                    naive_dominates(&cfg, d, b),
                    "dominates({}, {}) over {:?}", d, b, cfg.succs
                );
            }
        }
    }

    #[test]
    fn idom_is_the_unique_maximal_strict_dominator(
        spec in proptest::collection::vec((any::<u8>(), any::<u32>(), any::<u32>()), 1..12),
    ) {
        let f = decode(&spec);
        let cfg = Cfg::of(&f);
        let dom = Dominators::of(&cfg);
        for b in 0..cfg.n {
            match dom.idom(b) {
                None => prop_assert!(b == 0 || !cfg.reachable[b]),
                Some(i) => {
                    prop_assert!(naive_dominates(&cfg, i, b) && i != b);
                    // Every other strict dominator of b dominates the idom.
                    for d in 0..cfg.n {
                        if d != b && d != i && naive_dominates(&cfg, d, b) {
                            prop_assert!(
                                naive_dominates(&cfg, d, i),
                                "strict dominator {} must dominate idom {} of {}", d, i, b
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn natural_loops_match_the_back_edge_definition(
        spec in proptest::collection::vec((any::<u8>(), any::<u32>(), any::<u32>()), 1..12),
    ) {
        let f = decode(&spec);
        let cfg = Cfg::of(&f);
        let dom = Dominators::of(&cfg);
        prop_assert_eq!(natural_loops(&cfg, &dom), naive_loops(&cfg));
    }

    #[test]
    fn loop_structure_invariants_hold(
        spec in proptest::collection::vec((any::<u8>(), any::<u32>(), any::<u32>()), 1..12),
    ) {
        let f = decode(&spec);
        let a = CfgAnalysis::of(&f);
        for l in &a.loops {
            // The header dominates every block of its loop, and every
            // back edge ends in the loop.
            let dom = Dominators::of(&a.cfg);
            for &b in &l.blocks {
                prop_assert!(dom.dominates(l.header, b));
            }
            for &e in &l.back_edges {
                prop_assert!(l.blocks.contains(&e));
            }
        }
        // Frequency follows depth, and unreachable blocks are silent.
        for b in 0..a.cfg.n {
            if a.cfg.reachable[b] {
                let depth = a.loops.iter().filter(|l| l.blocks.contains(&b)).count() as u32;
                prop_assert_eq!(a.depth[b], depth);
                prop_assert!((a.freq[b] - LOOP_BASE.powi(depth.min(8) as i32)).abs() < 1e-9);
            } else {
                prop_assert_eq!(a.freq[b], 0.0);
            }
        }
    }
}
