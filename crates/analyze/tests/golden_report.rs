//! Golden snapshots of the static sensitivity report, one benchmark per
//! machine model. The analyzer is a pure function of the IR, the linked
//! image, and the machine configuration, so its long-form output must be
//! byte-stable; drift means the predictor changed and the validation
//! correlation (see the root `static_vs_dynamic` test) should be
//! re-examined.
//!
//! To regenerate after an *intentional* predictor change:
//!
//! ```text
//! BIASLAB_BLESS=1 cargo test -p biaslab-analyze --test golden_report
//! ```

use std::path::PathBuf;

use biaslab_analyze::analyze_benchmark;
use biaslab_uarch::MachineConfig;

fn golden_path(machine: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("tests/golden/analyze_{machine}.txt"))
}

fn check(bench: &str, machine: &MachineConfig) {
    let report = analyze_benchmark(bench, machine).expect("analyzable");
    let actual = report.explain() + "\n";
    let path = golden_path(&machine.name);
    if std::env::var_os("BIASLAB_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("has parent")).expect("mkdir");
        std::fs::write(&path, &actual).expect("write golden file");
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run `BIASLAB_BLESS=1 cargo test -p biaslab-analyze \
             --test golden_report` to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "static report for {bench} on {} drifted — if the predictor change is \
         intentional, re-bless with BIASLAB_BLESS=1",
        machine.name
    );
}

#[test]
fn report_is_stable_on_pentium4() {
    check("mcf", &MachineConfig::pentium4());
}

#[test]
fn report_is_stable_on_core2() {
    check("perlbench", &MachineConfig::core2());
}

#[test]
fn report_is_stable_on_o3cpu() {
    check("sjeng", &MachineConfig::o3cpu());
}
