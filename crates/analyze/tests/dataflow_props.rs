//! Property tests for the layer-2 dataflow passes behind `biaslint`:
//! the bitset/worklist implementations in `biaslab_toolchain::dataflow`
//! must agree with naive O(n²)-and-worse reference implementations
//! built straight from the path-based textbook definitions, over
//! arbitrary generated CFGs with arbitrary slot traffic.
//!
//! The references deliberately share nothing with the production code
//! but the [`CellMap`] index space (a trivially-correct arithmetic
//! mapping): liveness and reaching definitions are answered per query
//! by a fresh depth-first path search.

use biaslab_toolchain::dataflow::{CellMap, EntryFlavor, Liveness, ReachingDefs, ValueRanges};
use biaslab_toolchain::ir::{Block, BlockId, Function, LocalId, LocalSlot, Op, Terminator, Val};
use proptest::prelude::*;

/// One generated op: `(kind, local_sel, off_sel)`. Kinds 0-2 load,
/// 3-5 store, 6 takes an address (escaping the slot), 7 is unrelated
/// traffic. Offsets may run past the slot (the analyses must ignore
/// out-of-range accesses rather than panic).
fn decode_op(kind: u8, local_sel: u8, off_sel: u8, next_val: &mut u32) -> Op {
    let local = LocalId(u32::from(local_sel % 3));
    let offset = u32::from(off_sel % 3) * 8;
    let dst = Val(*next_val);
    *next_val += 1;
    match kind % 8 {
        0..=2 => Op::LoadLocal { dst, local, offset },
        3..=5 => Op::StoreLocal {
            local,
            offset,
            src: Val(0),
        },
        6 => Op::AddrLocal { dst, local },
        _ => Op::Const { dst, value: 7 },
    }
}

/// Decodes a per-block spec into a function over three locals (a
/// scalar, a 16-byte buffer, a 24-byte buffer — six cells total).
/// Terminators follow the same `(kind, t1, t2)` encoding as the CFG
/// property tests: return, jump to `t1 % n`, or branch `t1/t2 % n`.
fn decode(param_count: u32, spec: &[(u8, u32, u32, Vec<(u8, u8, u8)>)]) -> Function {
    let n = spec.len() as u32;
    let mut next_val = 1u32;
    let blocks = spec
        .iter()
        .map(|(kind, t1, t2, ops)| Block {
            ops: ops
                .iter()
                .map(|&(k, l, o)| decode_op(k, l, o, &mut next_val))
                .collect(),
            term: match kind % 3 {
                0 => Terminator::Ret { value: None },
                1 => Terminator::Jump(BlockId(t1 % n)),
                _ => Terminator::Branch {
                    cond: biaslab_isa::Cond::Eq,
                    a: Val(0),
                    b: Val(0),
                    then_block: BlockId(t1 % n),
                    else_block: BlockId(t2 % n),
                },
            },
        })
        .collect();
    Function {
        name: "gen".into(),
        param_count: param_count % 3,
        returns_value: false,
        locals: vec![
            LocalSlot::scalar(),
            LocalSlot::buffer(16),
            LocalSlot::buffer(24),
        ],
        blocks,
        loops: vec![],
        next_val,
    }
}

fn successors(f: &Function, b: usize) -> Vec<usize> {
    f.blocks[b]
        .term
        .successors()
        .iter()
        .map(|s| s.0 as usize)
        .filter(|&s| s < f.blocks.len())
        .collect()
}

fn escaped_cells(f: &Function, cells: &CellMap) -> Vec<bool> {
    let mut escaped = vec![false; cells.len()];
    for (i, taken) in f.address_taken_locals().iter().enumerate() {
        if *taken {
            for c in cells.cells_of(LocalId(i as u32)) {
                escaped[c] = true;
            }
        }
    }
    escaped
}

/// First untracked-cell event in `block` from op `from` on: `Some(true)`
/// for a load of `cell`, `Some(false)` for a store to it, `None` if the
/// block falls through without touching it.
fn first_event(
    f: &Function,
    cells: &CellMap,
    block: usize,
    from: usize,
    cell: usize,
) -> Option<bool> {
    f.blocks[block].ops[from..].iter().find_map(|op| match *op {
        Op::LoadLocal { local, offset, .. } if cells.cell(local, offset) == Some(cell) => {
            Some(true)
        }
        Op::StoreLocal { local, offset, .. } if cells.cell(local, offset) == Some(cell) => {
            Some(false)
        }
        _ => None,
    })
}

fn stores_cell(f: &Function, cells: &CellMap, block: usize, cell: usize) -> bool {
    f.blocks[block].ops.iter().any(|op| {
        matches!(*op, Op::StoreLocal { local, offset, .. }
            if cells.cell(local, offset) == Some(cell))
    })
}

/// Path-based liveness: is there a walk from the entry of some block in
/// `start` that reaches a load of `cell` with no intervening store?
fn naive_live_from(f: &Function, cells: &CellMap, start: &[usize], cell: usize) -> bool {
    let mut seen = vec![false; f.blocks.len()];
    let mut stack: Vec<usize> = Vec::new();
    for &s in start {
        if !seen[s] {
            seen[s] = true;
            stack.push(s);
        }
    }
    while let Some(b) = stack.pop() {
        match first_event(f, cells, b, 0, cell) {
            Some(true) => return true,
            Some(false) => continue,
            None => {
                for s in successors(f, b) {
                    if !seen[s] {
                        seen[s] = true;
                        stack.push(s);
                    }
                }
            }
        }
    }
    false
}

/// Path-based reaching: does the *entry* definition of `cell` reach the
/// entry of `target`? (A path from block 0 on which no block stores the
/// cell; escaped cells are never killed, so plain reachability.)
fn naive_entry_reaches(
    f: &Function,
    cells: &CellMap,
    escaped: &[bool],
    cell: usize,
    target: usize,
) -> bool {
    if target == 0 {
        return true;
    }
    let mut seen = vec![false; f.blocks.len()];
    let mut stack = vec![0usize];
    seen[0] = true;
    while let Some(b) = stack.pop() {
        if !escaped[cell] && stores_cell(f, cells, b, cell) {
            continue;
        }
        for s in successors(f, b) {
            if s == target {
                return true;
            }
            if !seen[s] {
                seen[s] = true;
                stack.push(s);
            }
        }
    }
    false
}

/// Path-based reaching for a tracked store site: the site must be the
/// last store to its cell in its block (later stores shadow it), and
/// some path from its block's exit must reach `target`'s entry without
/// crossing another block that stores the cell.
fn naive_def_reaches(
    f: &Function,
    cells: &CellMap,
    def_block: usize,
    def_op: usize,
    cell: usize,
    target: usize,
) -> bool {
    let last = f.blocks[def_block]
        .ops
        .iter()
        .enumerate()
        .rev()
        .find_map(|(oi, op)| match *op {
            Op::StoreLocal { local, offset, .. } if cells.cell(local, offset) == Some(cell) => {
                Some(oi)
            }
            _ => None,
        });
    if last != Some(def_op) {
        return false;
    }
    let mut seen = vec![false; f.blocks.len()];
    let mut stack = vec![def_block];
    // `def_block` itself is the path's start, not an intermediate node:
    // its store is the definition, not a kill.
    while let Some(b) = stack.pop() {
        if b != def_block && stores_cell(f, cells, b, cell) {
            continue;
        }
        for s in successors(f, b) {
            if s == target {
                return true;
            }
            if !seen[s] {
                seen[s] = true;
                stack.push(s);
            }
        }
    }
    false
}

fn spec_strategy() -> impl Strategy<Value = (u32, Vec<(u8, u32, u32, Vec<(u8, u8, u8)>)>)> {
    (
        any::<u32>(),
        proptest::collection::vec(
            (
                any::<u8>(),
                any::<u32>(),
                any::<u32>(),
                proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..6),
            ),
            1..8,
        ),
    )
}

proptest! {
    #[test]
    fn liveness_matches_the_path_based_definition(
        (params, spec) in spec_strategy(),
    ) {
        let f = decode(params, &spec);
        let live = Liveness::of(&f);
        let cells = CellMap::of(&f);
        let escaped = escaped_cells(&f, &cells);
        for b in 0..f.blocks.len() {
            for c in 0..cells.len() {
                let expect_in = escaped[c] || naive_live_from(&f, &cells, &[b], c);
                let expect_out = escaped[c]
                    || naive_live_from(&f, &cells, &successors(&f, b), c)
                    // A self-loop re-enters this block's own loads.
                    || (successors(&f, b).contains(&b)
                        && first_event(&f, &cells, b, 0, c) == Some(true));
                prop_assert_eq!(live.is_live_in(b, c), expect_in, "live_in({}, {})", b, c);
                prop_assert_eq!(live.is_live_out(b, c), expect_out, "live_out({}, {})", b, c);
                prop_assert_eq!(live.is_escaped(c), escaped[c]);
            }
        }
    }

    #[test]
    fn dead_stores_match_the_path_based_definition(
        (params, spec) in spec_strategy(),
    ) {
        let f = decode(params, &spec);
        let live = Liveness::of(&f);
        let cells = CellMap::of(&f);
        let escaped = escaped_cells(&f, &cells);
        let mut expect: Vec<(u32, u32)> = Vec::new();
        for (bi, block) in f.blocks.iter().enumerate() {
            for (oi, op) in block.ops.iter().enumerate() {
                let Op::StoreLocal { local, offset, .. } = *op else {
                    continue;
                };
                let Some(c) = cells.cell(local, offset) else {
                    continue;
                };
                if escaped[c] {
                    continue;
                }
                let read_later = match first_event(&f, &cells, bi, oi + 1, c) {
                    Some(read) => read,
                    None => naive_live_from(&f, &cells, &successors(&f, bi), c),
                };
                if !read_later {
                    expect.push((bi as u32, oi as u32));
                }
            }
        }
        prop_assert_eq!(live.dead_stores(&f), expect);
    }

    #[test]
    fn reaching_defs_match_the_path_based_definition(
        (params, spec) in spec_strategy(),
    ) {
        let f = decode(params, &spec);
        let rd = ReachingDefs::of(&f);
        let cells = CellMap::of(&f);
        let escaped = escaped_cells(&f, &cells);

        // The tracked-site inventory is the plain walk order.
        let mut sites = Vec::new();
        for (bi, block) in f.blocks.iter().enumerate() {
            for (oi, op) in block.ops.iter().enumerate() {
                if let Op::StoreLocal { local, offset, .. } = *op {
                    if let Some(c) = cells.cell(local, offset) {
                        sites.push((bi, oi, c));
                    }
                }
            }
        }
        prop_assert_eq!(rd.tracked.len(), sites.len());

        for target in 0..f.blocks.len() {
            for (di, &(bi, oi, c)) in sites.iter().enumerate() {
                prop_assert_eq!(
                    rd.reaches_entry(target, di),
                    naive_def_reaches(&f, &cells, bi, oi, c, target),
                    "def {} (bb{} op{} cell{}) -> entry of bb{}", di, bi, oi, c, target
                );
            }
            for c in 0..cells.len() {
                prop_assert_eq!(
                    rd.reaches_entry(target, rd.entry_def(c)),
                    naive_entry_reaches(&f, &cells, &escaped, c, target),
                    "entry def of cell {} -> entry of bb{}", c, target
                );
            }
        }

        // Entry flavors restate the parameter / escape partition.
        for c in 0..cells.len() {
            let (local, _) = cells.owner(c);
            let expect = if local.0 < f.param_count {
                EntryFlavor::Param
            } else if escaped[c] {
                EntryFlavor::Escaped
            } else {
                EntryFlavor::Uninit
            };
            prop_assert_eq!(rd.flavor(c), expect);
        }
    }

    #[test]
    fn uninit_reads_match_the_path_based_definition(
        (params, spec) in spec_strategy(),
    ) {
        let f = decode(params, &spec);
        let rd = ReachingDefs::of(&f);
        let cells = CellMap::of(&f);
        let escaped = escaped_cells(&f, &cells);
        let mut expect = Vec::new();
        for (bi, block) in f.blocks.iter().enumerate() {
            for (oi, op) in block.ops.iter().enumerate() {
                let Op::LoadLocal { local, offset, .. } = *op else {
                    continue;
                };
                let Some(c) = cells.cell(local, offset) else {
                    continue;
                };
                let (owner, _) = cells.owner(c);
                let uninit_flavor = owner.0 >= f.param_count && !escaped[c];
                // The entry definition must survive to the block and then
                // past every earlier store to the cell within it.
                let stored_before = f.blocks[bi].ops[..oi].iter().any(|op| {
                    matches!(*op, Op::StoreLocal { local, offset, .. }
                        if cells.cell(local, offset) == Some(c))
                });
                if uninit_flavor
                    && !stored_before
                    && naive_entry_reaches(&f, &cells, &escaped, c, bi)
                {
                    expect.push((bi as u32, oi as u32, local, offset));
                }
            }
        }
        let got: Vec<(u32, u32, LocalId, u32)> = rd
            .maybe_uninit_reads(&f)
            .into_iter()
            .map(|r| (r.block, r.op, r.local, r.offset))
            .collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn all_passes_are_total_on_arbitrary_ir(
        (params, spec) in spec_strategy(),
    ) {
        // Unverified IR (out-of-range offsets, undefined vals) must never
        // panic any pass; lint runs them before verification has a say.
        let f = decode(params, &spec);
        let live = Liveness::of(&f);
        let rd = ReachingDefs::of(&f);
        let vr = ValueRanges::of(&f);
        let _ = live.dead_stores(&f);
        let _ = rd.maybe_uninit_reads(&f);
        for b in 0..f.blocks.len() {
            let _ = vr.vals_in_block(&f, b);
        }
    }
}
