//! Golden snapshots of the suite's biaslint findings, one JSONL stream
//! per machine model. Lint is a pure function of the IR, the linked
//! image grid, and the machine configuration, so its machine-readable
//! output must be byte-stable; drift means a detector or the hotness
//! model changed and `ext-lint`'s causal precision should be re-checked.
//!
//! To regenerate after an *intentional* detector change:
//!
//! ```text
//! BIASLAB_BLESS=1 cargo test -p biaslab-analyze --test golden_lint
//! ```
//!
//! (`scripts/ci.sh` diffs `biaslab lint all --json` against these same
//! files, so the CLI and the library stay in lockstep.)

use std::path::PathBuf;

use biaslab_analyze::{lint_suite_jsonl, validate_lint_line};
use biaslab_uarch::MachineConfig;

fn golden_path(machine: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("tests/golden/lint_{machine}.jsonl"))
}

fn check(machine: &MachineConfig) {
    let actual = lint_suite_jsonl(machine).expect("suite lints");
    for line in actual.lines() {
        validate_lint_line(line).expect("golden stream is schema-clean");
    }
    let path = golden_path(&machine.name);
    if std::env::var_os("BIASLAB_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("has parent")).expect("mkdir");
        std::fs::write(&path, &actual).expect("write golden file");
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run `BIASLAB_BLESS=1 cargo test -p biaslab-analyze \
             --test golden_lint` to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "lint findings on {} drifted — if the detector change is intentional, \
         re-bless with BIASLAB_BLESS=1 and re-run ext-lint to confirm precision",
        machine.name
    );
}

#[test]
fn lint_findings_are_stable_on_pentium4() {
    check(&MachineConfig::pentium4());
}

#[test]
fn lint_findings_are_stable_on_core2() {
    check(&MachineConfig::core2());
}

#[test]
fn lint_findings_are_stable_on_o3cpu() {
    check(&MachineConfig::o3cpu());
}
