//! `biaslab` — the command-line face of the measurement-bias laboratory.
//!
//! ```text
//! biaslab list                          # the benchmark suite
//! biaslab machines                      # the machine models
//! biaslab run perlbench --opt O3 --machine o3cpu --env 612 --profile
//! biaslab disasm hmmer --opt O2 | head
//! biaslab audit gcc --machine core2     # env + link-order bias report
//! biaslab analyze sjeng --explain       # predict bias statically (no runs)
//! biaslab analyze all --machine o3cpu   # rank the suite, still zero runs
//! biaslab survey                        # the 133-paper literature table
//! ```

use std::process::ExitCode;

mod args;
mod commands;
mod signals;

fn main() -> ExitCode {
    if let Err(e) = biaslab_core::faults::install_from_env() {
        eprintln!("error: invalid BIASLAB_FAULTS: {e}");
        return ExitCode::FAILURE;
    }
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(cmd) => match commands::run(cmd) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", args::USAGE);
            ExitCode::FAILURE
        }
    }
}
