//! SIGTERM latch for graceful drain.
//!
//! The core crate forbids unsafe code, so the one `extern` binding the
//! daemon needs — installing a SIGTERM handler — lives here in the CLI.
//! The handler only stores into an atomic (the async-signal-safe subset);
//! the serve foreground loop polls [`term_requested`] and turns the latch
//! into an orderly drain.

use std::sync::atomic::{AtomicBool, Ordering};

const SIGTERM: i32 = 15;

static TERM: AtomicBool = AtomicBool::new(false);

extern "C" fn on_term(_sig: i32) {
    TERM.store(true, Ordering::SeqCst);
}

unsafe extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

/// Installs the SIGTERM handler. Call once, before serving.
pub fn install_sigterm() {
    unsafe {
        signal(SIGTERM, on_term);
    }
}

/// `true` once a SIGTERM has been delivered.
pub fn term_requested() -> bool {
    TERM.load(Ordering::SeqCst)
}
