//! Command implementations.

use biaslab_core::harness::Harness;
use biaslab_core::report::Table;
use biaslab_core::setup::ExperimentSetup;
use biaslab_core::Orchestrator;
use biaslab_toolchain::load::{Environment, Loader};
use biaslab_toolchain::OptLevel;
use biaslab_uarch::{Machine, MachineConfig};
use biaslab_workloads::{benchmark_by_name, suite, InputSize};

use biaslab_core::serve;

use crate::args::{parse_machine, ClientArgs, Command, RunArgs};

/// Executes a parsed command.
pub fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::List => list(),
        Command::Machines => machines(),
        Command::Survey => survey(),
        Command::Run(args) => run_bench(&args),
        Command::Disasm { bench, opt } => disasm(&bench, opt),
        Command::Ir { bench, opt } => print_ir(&bench, opt),
        Command::Audit {
            bench,
            machine,
            size,
        } => audit(&bench, &machine, size),
        Command::Analyze {
            bench,
            machine,
            explain,
        } => analyze(&bench, &machine, explain),
        Command::Lint {
            bench,
            machine,
            json,
            deny,
        } => lint(&bench, &machine, json, deny.as_deref()),
        Command::Trace { file, flame } => trace(&file, flame),
        Command::Serve {
            addr,
            workers,
            queue_depth,
            drain_timeout_ms,
        } => serve_cmd(&addr, workers, queue_depth, drain_timeout_ms),
        Command::Client(args) => client_cmd(&args),
        Command::Loadgen {
            addr,
            clients,
            requests,
            seed,
        } => loadgen_cmd(&addr, clients, requests, seed),
    }
}

fn serve_cmd(
    addr: &str,
    workers: usize,
    queue_depth: usize,
    drain_timeout_ms: u64,
) -> Result<(), String> {
    let addr = serve::Addr::parse(addr)?;
    let mut cfg = serve::ServerConfig::new(addr);
    cfg.workers = workers;
    cfg.queue_depth = queue_depth;
    cfg.drain_timeout_ms = drain_timeout_ms;
    cfg.journal_dir = Some(
        std::env::var_os("BIASLAB_RESULTS_DIR")
            .map_or_else(
                || std::path::PathBuf::from("results"),
                std::path::PathBuf::from,
            )
            .join("sweeps"),
    );
    let orch = std::sync::Arc::new(Orchestrator::from_env());
    let server = serve::Server::start(&cfg, orch)?;
    println!(
        "biaslab serve listening on {} workers={workers} queue={queue_depth}",
        server.addr()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    crate::signals::install_sigterm();
    server.run_until_shutdown_or(crate::signals::term_requested);
    Ok(())
}

fn client_cmd(a: &ClientArgs) -> Result<(), String> {
    let addr = serve::Addr::parse(&a.addr)?;
    let line = match a.op.as_str() {
        "ping" | "stats" => serve::encode_control(a.id, &a.op),
        "shutdown" => serve::encode_shutdown(a.id, a.drain),
        _ => {
            let spec = serve::MeasureSpec {
                bench: a.bench.clone(),
                machine: a.machine.clone(),
                opt: a.opt,
                order: a.order,
                text_offset: 0,
                stack_shift: 0,
                env: u64::from(a.env_bytes),
                size: a.size,
                budget: a.budget,
            };
            if a.op == "measure" {
                serve::encode_measure_deadline(a.id, &spec, a.deadline_ms)
            } else {
                serve::encode_sweep_deadline(a.id, &spec, &a.envs, a.deadline_ms)
            }
        }
    };
    let mut client = serve::Client::new(addr).with_attempts(a.attempts);
    let ex = client.request(&line).map_err(|e| format!("client: {e}"))?;
    for l in &ex.lines {
        println!("{l}");
    }
    Ok(())
}

fn loadgen_cmd(addr: &str, clients: usize, requests: usize, seed: u64) -> Result<(), String> {
    let cfg = serve::LoadgenConfig {
        addr: serve::Addr::parse(addr)?,
        clients,
        requests,
        seed,
    };
    let report = serve::loadgen(&cfg)?;
    println!("{report}");
    Ok(())
}

fn list() -> Result<(), String> {
    let mut table = Table::new(vec!["benchmark", "behaviour", "functions"]);
    for b in suite() {
        table.row(vec![
            b.name().to_owned(),
            b.description().to_owned(),
            format!("{}", b.module().functions.len()),
        ]);
    }
    println!("{table}");
    Ok(())
}

fn machines() -> Result<(), String> {
    let mut table = Table::new(vec![
        "machine",
        "L1D",
        "ways",
        "L2",
        "BTB",
        "mispredict",
        "banks",
    ]);
    for m in MachineConfig::all() {
        table.row(vec![
            m.name.clone(),
            format!("{}K", m.l1d.size >> 10),
            format!("{}", m.l1d.ways),
            format!("{}K", m.l2.size >> 10),
            format!("{}", m.branch.btb_entries),
            format!("{}", m.branch.mispredict_penalty),
            format!("{}", m.l1d_banks),
        ]);
    }
    println!("{table}");
    Ok(())
}

fn survey() -> Result<(), String> {
    let table = biaslab_survey::tabulate(&biaslab_survey::corpus(2009));
    println!("{table}");
    Ok(())
}

fn lookup(bench: &str) -> Result<biaslab_workloads::Benchmark, String> {
    benchmark_by_name(bench)
        .ok_or_else(|| format!("unknown benchmark `{bench}` — `biaslab list` shows the suite"))
}

/// The orchestrator-registry harness for a benchmark, so repeated CLI
/// invocations within one process (and the audit sweeps) share caches.
fn shared_harness(bench: &str) -> Result<std::sync::Arc<Harness>, String> {
    Orchestrator::global()
        .harness(bench)
        .ok_or_else(|| format!("unknown benchmark `{bench}` — `biaslab list` shows the suite"))
}

fn run_bench(args: &RunArgs) -> Result<(), String> {
    let harness = shared_harness(&args.bench)?;
    let machine_config = parse_machine(&args.machine)?;
    let mut setup = ExperimentSetup::default_on(machine_config.clone(), args.opt);
    setup.link_order = args.order;
    if args.env_bytes >= 23 {
        setup.env = Environment::of_total_size(args.env_bytes);
    }

    if args.profile {
        // Profiled path: drive the stages directly so the profiler sees
        // the same verified binary the harness measures.
        let names = harness.object_names();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let order = setup.link_order.resolve(&name_refs);
        let exe = harness
            .executable(args.opt, &order, setup.text_offset)
            .map_err(|e| e.to_string())?;
        let process = Loader::new()
            .load(&exe, &setup.env, harness.benchmark().args(args.size))
            .map_err(|e| e.to_string())?;
        let (result, profile) = Machine::new(machine_config)
            .run_profiled(&exe, process)
            .map_err(|e| e.to_string())?;
        let expected = harness.benchmark().expected(args.size);
        if result.checksum != expected.checksum {
            return Err(format!(
                "verification failed: checksum {:#x} != reference {:#x}",
                result.checksum, expected.checksum
            ));
        }
        println!(
            "{} @ {} on {} [{}]",
            args.bench,
            args.opt,
            args.machine,
            setup.summary()
        );
        println!("{}\n", result.counters);
        println!("{profile}");
    } else {
        let m = Orchestrator::global()
            .measure(&harness, &setup, args.size)
            .map_err(|e| e.to_string())?;
        println!(
            "{} @ {} on {} [{}]",
            args.bench, args.opt, args.machine, m.setup
        );
        println!("{}", m.counters);
    }
    Ok(())
}

fn disasm(bench: &str, opt: OptLevel) -> Result<(), String> {
    let harness = shared_harness(bench)?;
    let names = harness.object_names();
    let order: Vec<usize> = (0..names.len()).collect();
    let exe = harness
        .executable(opt, &order, 0)
        .map_err(|e| e.to_string())?;
    print!("{}", exe.disassemble());
    Ok(())
}

fn print_ir(bench: &str, opt: OptLevel) -> Result<(), String> {
    let b = lookup(bench)?;
    let optimized = biaslab_toolchain::opt::optimize(b.module(), opt);
    print!("{optimized}");
    Ok(())
}

fn audit(bench: &str, machine: &str, size: InputSize) -> Result<(), String> {
    let harness = shared_harness(bench)?;
    let machine_config = parse_machine(machine)?;
    let config = biaslab_core::audit::AuditConfig {
        machines: vec![machine_config],
        size,
        ..biaslab_core::audit::AuditConfig::default()
    };
    let report = biaslab_core::audit::full_audit(&harness, &config).map_err(|e| e.to_string())?;
    println!("{report}");
    Ok(())
}

fn trace(file: &str, flame: bool) -> Result<(), String> {
    let text =
        std::fs::read_to_string(file).map_err(|e| format!("could not read `{file}`: {e}"))?;
    let trace = biaslab_core::trace_report::parse(&text);
    if flame {
        print!("{}", biaslab_core::trace_report::flame(&trace));
    } else {
        println!("{}", biaslab_core::trace_report::summary(&trace));
    }
    Ok(())
}

fn analyze(bench: &str, machine: &str, explain: bool) -> Result<(), String> {
    let machine_config = parse_machine(machine)?;
    if bench == "all" {
        let ranked = biaslab_analyze::rank_suite(&machine_config)?;
        let mut table = Table::new(vec!["rank", "benchmark", "predicted-spread", "top factor"]);
        for (i, r) in ranked.iter().enumerate() {
            let top = r
                .factors
                .iter()
                .max_by(|a, b| a.score.partial_cmp(&b.score).expect("finite scores"))
                .expect("three factors");
            table.row(vec![
                format!("{}", i + 1),
                r.bench.clone(),
                format!("{:.4}", r.predicted_spread),
                top.factor.to_string(),
            ]);
        }
        println!(
            "suite ranked by predicted O3/O2 spread on {}:\n",
            machine_config.name
        );
        println!("{table}");
        return Ok(());
    }
    let report = biaslab_analyze::analyze_benchmark(bench, &machine_config)?;
    if explain {
        println!("{}", report.explain());
    } else {
        println!("{report}");
    }
    Ok(())
}

fn lint(bench: &str, machine: &str, json: bool, deny: Option<&str>) -> Result<(), String> {
    let machine_config = parse_machine(machine)?;
    let reports = if bench == "all" {
        biaslab_analyze::lint_suite(&machine_config)?
    } else {
        vec![biaslab_analyze::lint_benchmark(bench, &machine_config)?]
    };
    for (i, report) in reports.iter().enumerate() {
        if json {
            print!("{}", report.to_jsonl());
        } else {
            if i > 0 {
                println!();
            }
            println!("{}", report.render());
        }
    }
    if let Some(class) = deny {
        let c = biaslab_analyze::FindingClass::parse(class)
            .ok_or_else(|| format!("unknown finding class `{class}`"))?;
        let hits: Vec<&str> = reports
            .iter()
            .filter(|r| r.has_class(c))
            .map(|r| r.bench.as_str())
            .collect();
        if !hits.is_empty() {
            return Err(format!(
                "--deny {class}: findings reported in {}",
                hits.join(", ")
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn informational_commands_succeed() {
        for cmd in ["list", "machines", "survey"] {
            run(parse(&argv(cmd)).unwrap()).unwrap_or_else(|e| panic!("{cmd}: {e}"));
        }
    }

    #[test]
    fn run_command_measures_and_verifies() {
        run(parse(&argv("run hmmer --opt O2 --machine o3cpu --env 100")).unwrap()).unwrap();
    }

    #[test]
    fn run_with_profile_succeeds() {
        run(parse(&argv("run milc --profile")).unwrap()).unwrap();
    }

    #[test]
    fn disasm_and_ir_succeed() {
        run(parse(&argv("disasm gobmk --opt O1")).unwrap()).unwrap();
        run(parse(&argv("ir gobmk --opt O3")).unwrap()).unwrap();
    }

    #[test]
    fn analyze_succeeds_without_simulating() {
        let before = Orchestrator::global().stats().simulated;
        run(parse(&argv("analyze perlbench --machine o3cpu")).unwrap()).unwrap();
        run(parse(&argv("analyze mcf --explain")).unwrap()).unwrap();
        run(parse(&argv("analyze all --machine pentium4")).unwrap()).unwrap();
        assert_eq!(
            Orchestrator::global().stats().simulated,
            before,
            "analyze must not invoke the simulator"
        );
    }

    #[test]
    fn lint_succeeds_without_simulating() {
        let before = Orchestrator::global().stats().simulated;
        run(parse(&argv("lint perlbench --machine pentium4")).unwrap()).unwrap();
        run(parse(&argv("lint libquantum --json")).unwrap()).unwrap();
        assert_eq!(
            Orchestrator::global().stats().simulated,
            before,
            "lint must not invoke the simulator"
        );
    }

    #[test]
    fn lint_deny_gates_on_present_class() {
        // libquantum on core2 reports loop-fetch-straddle findings;
        // denying an absent class passes, denying a present one fails.
        run(parse(&argv("lint libquantum --deny uninit-read")).unwrap()).unwrap();
        let err =
            run(parse(&argv("lint libquantum --deny loop-fetch-straddle")).unwrap()).unwrap_err();
        assert!(err.contains("--deny loop-fetch-straddle"));
        assert!(err.contains("libquantum"));
    }

    #[test]
    fn unknown_benchmark_is_a_clean_error() {
        let err = run(parse(&argv("run nonesuch")).unwrap()).unwrap_err();
        assert!(err.contains("nonesuch"));
        assert!(err.contains("biaslab list"));
    }

    #[test]
    fn trace_command_renders_a_file() {
        use biaslab_core::telemetry::{CacheEvent, CacheOutcome, SpanEvent, TraceEvent};
        let span = TraceEvent::Span(SpanEvent {
            id: 1,
            parent: 0,
            name: "measure",
            scope: "fig1".into(),
            bench: "mcf".into(),
            worker: 0,
            key: 7,
            outcome: Some(CacheOutcome::Miss),
            start_us: 0,
            dur_us: 42,
        });
        let cache = TraceEvent::Cache(CacheEvent {
            outcome: CacheOutcome::Miss,
            key: 7,
            bench: "mcf".into(),
            scope: "fig1".into(),
            worker: 0,
            t_us: 1,
        });
        let text = format!(
            "{{\"v\":1,\"ev\":\"trace_start\",\"label\":\"test run\",\"clock_us\":50}}\n{}\n{}\n",
            span.to_line(),
            cache.to_line()
        );
        let path =
            std::env::temp_dir().join(format!("biaslab-trace-cmd-{}.jsonl", std::process::id()));
        std::fs::write(&path, text).unwrap();
        let file = path.to_str().unwrap().to_owned();
        run(Command::Trace {
            file: file.clone(),
            flame: false,
        })
        .unwrap();
        run(Command::Trace { file, flame: true }).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_on_a_missing_file_is_a_clean_error() {
        let err = run(Command::Trace {
            file: "results/traces/nonesuch.jsonl".into(),
            flame: false,
        })
        .unwrap_err();
        assert!(err.contains("nonesuch.jsonl"));
        assert!(err.contains("could not read"));
    }
}
