//! Argument parsing (dependency-free, flag-per-option).

use biaslab_core::setup::LinkOrder;
use biaslab_toolchain::OptLevel;
use biaslab_uarch::MachineConfig;
use biaslab_workloads::InputSize;

/// Usage text shown on parse errors.
pub const USAGE: &str = "\
usage: biaslab <command> [options]

commands:
  list                         list the benchmark suite
  machines                     list the machine models
  run <benchmark>              measure one benchmark
  disasm <benchmark>           print the linked disassembly
  ir <benchmark>               print the optimized IR
  audit <benchmark>            report environment & link-order bias
  analyze <benchmark>|all      predict layout-sensitivity statically
                               (`all` ranks the suite, still zero runs)
  lint <benchmark>|all         biaslint: layout-hazard findings with
                               named mechanisms and remedies (static,
                               zero simulations; classes:
                               loop-fetch-straddle, entry-alignment,
                               btb-collision, stack-residue, dead-store,
                               uninit-read)
  trace <file>                 report on a telemetry trace (from
                               `repro ... --trace`): slowest measurements,
                               cache effectiveness, worker utilization
  serve                        measurement daemon: JSONL requests over a
                               unix/tcp socket, bounded admission queue,
                               explicit shed responses under overload,
                               supervised worker pool (panicked workers
                               respawn; `stats` reports health ok |
                               degraded | draining), per-request
                               deadlines, SIGTERM graceful drain and
                               crash-recoverable sweep journals
  client <op> [<benchmark>]    one-shot daemon request; op is ping,
                               stats, shutdown, measure or sweep
  loadgen                      drive a daemon with randomized-setup
                               requests from concurrent connections and
                               report throughput, latency percentiles
                               and cache effectiveness
  survey                       print the 133-paper literature survey

options (run/disasm/audit/analyze):
  --opt <O0|O1|O2|O3>          optimization level       [default O2]
  --machine <name>             pentium4 | core2 | o3cpu [default core2]
  --env <bytes>                environment size         [default 0]
  --order <spec>               default|reversed|alpha|rand:<seed>
  --size <test|ref>            input size               [default test]
  --profile                    (run) print a per-function profile
  --explain                    (analyze) per-level image facts
  --json                       (lint) machine-readable JSONL findings
  --deny <class>               (lint) exit nonzero if any finding of
                               the class is reported

options (trace):
  --summary                    full report (the default)
  --flame                      merged profiles, folded-stacks form

options (serve/client/loadgen):
  --addr <a>                   unix:<path> | tcp:<host:port>
                               [default unix:/tmp/biaslab.sock]
  --workers <n>                (serve) worker-pool threads   [default 4]
  --queue <n>                  (serve) admission-queue bound [default 64]
  --drain-timeout <ms>         (serve) grace period for in-flight work
                               on SIGTERM / shutdown drain [default 5000]
  --id <n>                     (client) request id           [default 1]
  --budget <n>                 (client) instruction-budget override;
                               0 keeps the machine default
  --deadline <ms>              (client measure/sweep) request deadline;
                               expiry answers `status:deadline` instead
                               of burning a simulation [default 0 = none]
  --mode <now|drain>           (client shutdown) immediate stop, or
                               finish in-flight work first [default now]
  --envs <a,b,..>              (client sweep) env-size grid in bytes
  --attempts <n>               (client) retry budget         [default 4]
  --clients <n>                (loadgen) concurrent clients  [default 8]
  --requests <n>               (loadgen) requests per client [default 50]
  --seed <n>                   (loadgen) master seed         [default 1]

environment:
  BIASLAB_EXEC=<path>          pin the execution path: block (decoded
                               trace cache, the default via Auto) |
                               collapsed | event — all bit-identical
                               (alias: BIASLAB_KERNEL)
  BIASLAB_FAULTS=<spec>        deterministic fault injection, e.g.
                               seed=7,save.io=0.5,leader.panic=@1
  BIASLAB_RESULTS_DIR=<dir>    relocate results/ (measurements, traces)";

/// A parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `biaslab list`
    List,
    /// `biaslab machines`
    Machines,
    /// `biaslab survey`
    Survey,
    /// `biaslab run <bench> …`
    Run(RunArgs),
    /// `biaslab disasm <bench> …`
    Disasm {
        /// Benchmark name.
        bench: String,
        /// Optimization level.
        opt: OptLevel,
    },
    /// `biaslab ir <bench> …`
    Ir {
        /// Benchmark name.
        bench: String,
        /// Optimization level.
        opt: OptLevel,
    },
    /// `biaslab audit <bench> …`
    Audit {
        /// Benchmark name.
        bench: String,
        /// Machine model name.
        machine: String,
        /// Input size.
        size: InputSize,
    },
    /// `biaslab analyze <bench> …`
    Analyze {
        /// Benchmark name.
        bench: String,
        /// Machine model name.
        machine: String,
        /// Print per-level image facts, not just the factor table.
        explain: bool,
    },
    /// `biaslab lint <bench>|all …`
    Lint {
        /// Benchmark name, or `all` for the whole suite.
        bench: String,
        /// Machine model name.
        machine: String,
        /// Emit machine-readable JSONL instead of the text report.
        json: bool,
        /// Exit nonzero if any finding of this class is reported.
        deny: Option<String>,
    },
    /// `biaslab serve --addr <addr> …`
    Serve {
        /// Endpoint to bind (`unix:<path>` or `tcp:<host:port>`).
        addr: String,
        /// Worker-pool threads.
        workers: usize,
        /// Admission-queue bound.
        queue_depth: usize,
        /// Grace period (ms) for in-flight work when draining.
        drain_timeout_ms: u64,
    },
    /// `biaslab client <op> [<bench>] --addr <addr> …`
    Client(ClientArgs),
    /// `biaslab loadgen --addr <addr> …`
    Loadgen {
        /// Daemon endpoint.
        addr: String,
        /// Concurrent client connections.
        clients: usize,
        /// Requests per client.
        requests: usize,
        /// Master seed for the randomized setups.
        seed: u64,
    },
    /// `biaslab trace <file> [--summary|--flame]`
    Trace {
        /// Path to a trace JSONL file written by `repro ... --trace`.
        file: String,
        /// Render merged profiles in folded-stacks form instead of the
        /// summary report.
        flame: bool,
    },
}

/// Options for `biaslab client`.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientArgs {
    /// Daemon endpoint.
    pub addr: String,
    /// Operation: `ping`, `stats`, `shutdown`, `measure`, `sweep`.
    pub op: String,
    /// Benchmark name (measure/sweep only).
    pub bench: String,
    /// Machine model name.
    pub machine: String,
    /// Optimization level.
    pub opt: OptLevel,
    /// Link order.
    pub order: LinkOrder,
    /// Environment size in bytes (0 = empty).
    pub env_bytes: u32,
    /// Input size.
    pub size: InputSize,
    /// Instruction-budget override (0 keeps the machine default).
    pub budget: u64,
    /// Request id echoed in the response.
    pub id: u64,
    /// Environment-size grid for sweeps.
    pub envs: Vec<u64>,
    /// Retry budget for torn responses.
    pub attempts: u32,
    /// Request deadline in milliseconds (0 = none).
    pub deadline_ms: u64,
    /// `shutdown` drains in-flight work instead of stopping immediately.
    pub drain: bool,
}

/// Options for `biaslab run`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    pub bench: String,
    pub opt: OptLevel,
    pub machine: String,
    pub env_bytes: u32,
    pub order: LinkOrder,
    pub size: InputSize,
    pub profile: bool,
}

/// Parses an argv (without the program name).
pub fn parse(argv: &[String]) -> Result<Command, String> {
    let mut it = argv.iter();
    let cmd = it.next().ok_or("missing command")?;
    match cmd.as_str() {
        "list" => Ok(Command::List),
        "machines" => Ok(Command::Machines),
        "survey" => Ok(Command::Survey),
        "trace" => {
            let rest: Vec<&String> = it.collect();
            let file = rest
                .iter()
                .find(|a| !a.starts_with("--"))
                .ok_or("missing trace file path")?
                .to_string();
            if let Some(bad) = rest
                .iter()
                .find(|a| a.starts_with("--") && !matches!(a.as_str(), "--summary" | "--flame"))
            {
                return Err(format!("unknown trace option `{bad}`"));
            }
            Ok(Command::Trace {
                file,
                flame: rest.iter().any(|a| a.as_str() == "--flame"),
            })
        }
        "serve" | "loadgen" => {
            let rest: Vec<&String> = it.collect();
            let get = |flag: &str| -> Option<&str> {
                rest.iter()
                    .position(|a| a.as_str() == flag)
                    .and_then(|i| rest.get(i + 1))
                    .map(|s| s.as_str())
            };
            let addr = get("--addr").unwrap_or("unix:/tmp/biaslab.sock").to_owned();
            biaslab_core::serve::Addr::parse(&addr)?; // validate early
            let num = |flag: &str, default: u64| -> Result<u64, String> {
                get(flag)
                    .map(|v| v.parse::<u64>().map_err(|_| format!("bad {flag} `{v}`")))
                    .transpose()
                    .map(|n| n.unwrap_or(default))
            };
            if cmd == "serve" {
                Ok(Command::Serve {
                    addr,
                    workers: num("--workers", 4)? as usize,
                    queue_depth: num("--queue", 64)? as usize,
                    drain_timeout_ms: num("--drain-timeout", 5000)?,
                })
            } else {
                Ok(Command::Loadgen {
                    addr,
                    clients: num("--clients", 8)? as usize,
                    requests: num("--requests", 50)? as usize,
                    seed: num("--seed", 1)?,
                })
            }
        }
        "client" => {
            let rest: Vec<&String> = it.collect();
            let mut positional = rest.iter().filter(|a| !a.starts_with("--"));
            let op = positional.next().ok_or("missing client op")?.to_string();
            if !matches!(
                op.as_str(),
                "ping" | "stats" | "shutdown" | "measure" | "sweep"
            ) {
                return Err(format!(
                    "unknown client op `{op}` (ping, stats, shutdown, measure, sweep)"
                ));
            }
            let get = |flag: &str| -> Option<&str> {
                rest.iter()
                    .position(|a| a.as_str() == flag)
                    .and_then(|i| rest.get(i + 1))
                    .map(|s| s.as_str())
            };
            let addr = get("--addr").unwrap_or("unix:/tmp/biaslab.sock").to_owned();
            biaslab_core::serve::Addr::parse(&addr)?; // validate early
            let bench = if matches!(op.as_str(), "measure" | "sweep") {
                positional
                    .next()
                    .ok_or(format!("client {op} needs a benchmark name"))?
                    .to_string()
            } else {
                String::new()
            };
            let num = |flag: &str, default: u64| -> Result<u64, String> {
                get(flag)
                    .map(|v| v.parse::<u64>().map_err(|_| format!("bad {flag} `{v}`")))
                    .transpose()
                    .map(|n| n.unwrap_or(default))
            };
            let machine = get("--machine").unwrap_or("core2").to_owned();
            parse_machine(&machine)?; // validate early
            let envs = match get("--envs") {
                None => Vec::new(),
                Some(list) => list
                    .split(',')
                    .map(|v| {
                        v.parse::<u64>()
                            .map_err(|_| format!("bad --envs entry `{v}`"))
                    })
                    .collect::<Result<Vec<u64>, String>>()?,
            };
            let drain = match get("--mode") {
                None | Some("now") => false,
                Some("drain") => true,
                Some(other) => return Err(format!("unknown --mode `{other}` (now, drain)")),
            };
            Ok(Command::Client(ClientArgs {
                addr,
                op,
                bench,
                machine,
                opt: parse_opt(get("--opt").unwrap_or("O2"))?,
                order: parse_order(get("--order").unwrap_or("default"))?,
                env_bytes: num("--env", 0)? as u32,
                size: parse_size(get("--size").unwrap_or("test"))?,
                budget: num("--budget", 0)?,
                id: num("--id", 1)?,
                envs,
                attempts: num("--attempts", 4)? as u32,
                deadline_ms: num("--deadline", 0)?,
                drain,
            }))
        }
        "run" | "disasm" | "audit" | "ir" | "analyze" | "lint" => {
            let rest: Vec<&String> = it.collect();
            let bench = rest
                .iter()
                .find(|a| !a.starts_with("--"))
                .ok_or("missing benchmark name")?
                .to_string();
            let get = |flag: &str| -> Option<&str> {
                rest.iter()
                    .position(|a| a.as_str() == flag)
                    .and_then(|i| rest.get(i + 1))
                    .map(|s| s.as_str())
            };
            let opt = parse_opt(get("--opt").unwrap_or("O2"))?;
            let machine = get("--machine").unwrap_or("core2").to_owned();
            parse_machine(&machine)?; // validate early
            let size = parse_size(get("--size").unwrap_or("test"))?;
            match cmd.as_str() {
                "disasm" => Ok(Command::Disasm { bench, opt }),
                "ir" => Ok(Command::Ir { bench, opt }),
                "audit" => Ok(Command::Audit {
                    bench,
                    machine,
                    size,
                }),
                "analyze" => Ok(Command::Analyze {
                    bench,
                    machine,
                    explain: rest.iter().any(|a| a.as_str() == "--explain"),
                }),
                "lint" => {
                    let deny = get("--deny").map(str::to_owned);
                    if let Some(class) = &deny {
                        if biaslab_analyze::FindingClass::parse(class).is_none() {
                            return Err(format!(
                                "unknown finding class `{class}` (expected one of: {})",
                                biaslab_analyze::FindingClass::ALL
                                    .map(|c| c.name())
                                    .join(", ")
                            ));
                        }
                    }
                    Ok(Command::Lint {
                        bench,
                        machine,
                        json: rest.iter().any(|a| a.as_str() == "--json"),
                        deny,
                    })
                }
                _ => Ok(Command::Run(RunArgs {
                    bench,
                    opt,
                    machine,
                    env_bytes: get("--env")
                        .map(|v| v.parse::<u32>().map_err(|_| format!("bad --env `{v}`")))
                        .transpose()?
                        .unwrap_or(0),
                    order: parse_order(get("--order").unwrap_or("default"))?,
                    size,
                    profile: rest.iter().any(|a| a.as_str() == "--profile"),
                })),
            }
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn parse_opt(s: &str) -> Result<OptLevel, String> {
    OptLevel::ALL
        .into_iter()
        .find(|l| l.name().eq_ignore_ascii_case(s))
        .ok_or_else(|| format!("unknown optimization level `{s}`"))
}

/// Resolves a machine name to its configuration.
pub fn parse_machine(s: &str) -> Result<MachineConfig, String> {
    MachineConfig::all()
        .into_iter()
        .find(|m| m.name == s)
        .ok_or_else(|| format!("unknown machine `{s}` (pentium4, core2, o3cpu)"))
}

fn parse_size(s: &str) -> Result<InputSize, String> {
    match s {
        "test" => Ok(InputSize::Test),
        "ref" => Ok(InputSize::Ref),
        other => Err(format!("unknown size `{other}` (test, ref)")),
    }
}

fn parse_order(s: &str) -> Result<LinkOrder, String> {
    match s {
        "default" => Ok(LinkOrder::Default),
        "reversed" => Ok(LinkOrder::Reversed),
        "alpha" | "alphabetical" => Ok(LinkOrder::Alphabetical),
        other => {
            if let Some(seed) = other.strip_prefix("rand:") {
                let seed = seed
                    .parse::<u64>()
                    .map_err(|_| format!("bad seed in `{other}`"))?;
                Ok(LinkOrder::Random(seed))
            } else {
                Err(format!(
                    "unknown order `{other}` (default, reversed, alpha, rand:<seed>)"
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parses_simple_commands() {
        assert_eq!(parse(&argv("list")).unwrap(), Command::List);
        assert_eq!(parse(&argv("machines")).unwrap(), Command::Machines);
        assert_eq!(parse(&argv("survey")).unwrap(), Command::Survey);
    }

    #[test]
    fn parses_run_with_all_flags() {
        let cmd = parse(&argv(
            "run perlbench --opt O3 --machine o3cpu --env 612 --order rand:7 --size ref --profile",
        ))
        .unwrap();
        let Command::Run(a) = cmd else {
            panic!("expected run")
        };
        assert_eq!(a.bench, "perlbench");
        assert_eq!(a.opt, OptLevel::O3);
        assert_eq!(a.machine, "o3cpu");
        assert_eq!(a.env_bytes, 612);
        assert_eq!(a.order, LinkOrder::Random(7));
        assert_eq!(a.size, InputSize::Ref);
        assert!(a.profile);
    }

    #[test]
    fn run_defaults_are_sane() {
        let Command::Run(a) = parse(&argv("run hmmer")).unwrap() else {
            panic!()
        };
        assert_eq!(a.opt, OptLevel::O2);
        assert_eq!(a.machine, "core2");
        assert_eq!(a.env_bytes, 0);
        assert_eq!(a.order, LinkOrder::Default);
        assert!(!a.profile);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("run")).is_err());
        assert!(parse(&argv("run x --opt O9")).is_err());
        assert!(parse(&argv("run x --machine vax")).is_err());
        assert!(parse(&argv("run x --order rand:zzz")).is_err());
        assert!(parse(&argv("run x --env lots")).is_err());
        assert!(parse(&[]).is_err());
    }

    #[test]
    fn parses_ir() {
        assert_eq!(
            parse(&argv("ir sjeng --opt O3")).unwrap(),
            Command::Ir {
                bench: "sjeng".into(),
                opt: OptLevel::O3
            }
        );
    }

    #[test]
    fn parses_disasm_and_audit() {
        assert_eq!(
            parse(&argv("disasm milc --opt O0")).unwrap(),
            Command::Disasm {
                bench: "milc".into(),
                opt: OptLevel::O0
            }
        );
        let Command::Audit {
            bench,
            machine,
            size,
        } = parse(&argv("audit gcc --machine pentium4 --size ref")).unwrap()
        else {
            panic!()
        };
        assert_eq!(bench, "gcc");
        assert_eq!(machine, "pentium4");
        assert_eq!(size, InputSize::Ref);
    }

    #[test]
    fn parses_analyze() {
        assert_eq!(
            parse(&argv("analyze perlbench --machine o3cpu --explain")).unwrap(),
            Command::Analyze {
                bench: "perlbench".into(),
                machine: "o3cpu".into(),
                explain: true,
            }
        );
        let Command::Analyze {
            machine, explain, ..
        } = parse(&argv("analyze mcf")).unwrap()
        else {
            panic!()
        };
        assert_eq!(machine, "core2");
        assert!(!explain);
        assert!(parse(&argv("analyze")).is_err());
        assert!(parse(&argv("analyze mcf --machine vax")).is_err());
    }

    #[test]
    fn parses_lint() {
        assert_eq!(
            parse(&argv("lint perlbench --machine o3cpu --json")).unwrap(),
            Command::Lint {
                bench: "perlbench".into(),
                machine: "o3cpu".into(),
                json: true,
                deny: None,
            }
        );
        assert_eq!(
            parse(&argv("lint all --deny uninit-read")).unwrap(),
            Command::Lint {
                bench: "all".into(),
                machine: "core2".into(),
                json: false,
                deny: Some("uninit-read".into()),
            }
        );
        assert!(parse(&argv("lint")).is_err());
        assert!(parse(&argv("lint mcf --machine vax")).is_err());
        let err = parse(&argv("lint mcf --deny style")).unwrap_err();
        assert!(err.contains("unknown finding class"));
        assert!(err.contains("loop-fetch-straddle"));
    }

    #[test]
    fn parses_serve_and_client_supervision_flags() {
        let Command::Serve {
            drain_timeout_ms, ..
        } = parse(&argv("serve --drain-timeout 250")).unwrap()
        else {
            panic!("expected serve")
        };
        assert_eq!(drain_timeout_ms, 250);
        let Command::Serve {
            drain_timeout_ms, ..
        } = parse(&argv("serve")).unwrap()
        else {
            panic!("expected serve")
        };
        assert_eq!(drain_timeout_ms, 5000);

        let Command::Client(a) = parse(&argv("client measure hmmer --deadline 750")).unwrap()
        else {
            panic!("expected client")
        };
        assert_eq!(a.deadline_ms, 750);
        assert!(!a.drain);
        let Command::Client(a) = parse(&argv("client shutdown --mode drain")).unwrap() else {
            panic!("expected client")
        };
        assert!(a.drain);
        let Command::Client(a) = parse(&argv("client shutdown --mode now")).unwrap() else {
            panic!("expected client")
        };
        assert!(!a.drain);
        assert!(parse(&argv("client shutdown --mode later")).is_err());
        assert!(parse(&argv("serve --drain-timeout soon")).is_err());
    }

    #[test]
    fn parses_trace() {
        assert_eq!(
            parse(&argv("trace results/traces/repro-fig1-quick.jsonl")).unwrap(),
            Command::Trace {
                file: "results/traces/repro-fig1-quick.jsonl".into(),
                flame: false,
            }
        );
        assert_eq!(
            parse(&argv("trace t.jsonl --flame")).unwrap(),
            Command::Trace {
                file: "t.jsonl".into(),
                flame: true,
            }
        );
        let Command::Trace { flame, .. } = parse(&argv("trace t.jsonl --summary")).unwrap() else {
            panic!()
        };
        assert!(!flame);
        assert!(parse(&argv("trace")).is_err());
        assert!(parse(&argv("trace t.jsonl --frobnicate")).is_err());
    }
}
