#!/usr/bin/env bash
# The full verification pipeline, runnable locally or from CI.
# Fails on the first broken step.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace --release"
cargo test -q --workspace --release

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --release --workspace -- -D warnings

echo "==> repro all --effort quick (smoke, ephemeral)"
./target/release/repro all --effort quick --no-resume > /dev/null

echo "==> scripts/bench.sh ci (bench smoke)"
./scripts/bench.sh ci

echo "==> OK"
