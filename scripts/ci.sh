#!/usr/bin/env bash
# The full verification pipeline, runnable locally or from CI.
# Fails on the first broken step.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace --release"
cargo test -q --workspace --release

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --release --workspace -- -D warnings

echo "==> biaslab analyze smoke (static analyzer, zero simulations)"
./target/release/biaslab analyze perlbench --machine core2 --explain > /dev/null
./target/release/biaslab analyze all --machine o3cpu > /dev/null

echo "==> static-vs-dynamic rank correlation (all three machines)"
cargo test -q --release --test static_vs_dynamic

echo "==> repro all --effort quick (smoke, ephemeral)"
./target/release/repro all --effort quick --no-resume > /dev/null

echo "==> scripts/bench.sh ci (bench smoke)"
./scripts/bench.sh ci

echo "==> OK"
