#!/usr/bin/env bash
# The full verification pipeline, runnable locally or from CI.
# Fails on the first broken step.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace --release"
cargo test -q --workspace --release

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --release --workspace -- -D warnings

echo "==> biaslab analyze smoke (static analyzer, zero simulations)"
./target/release/biaslab analyze perlbench --machine core2 --explain > /dev/null
./target/release/biaslab analyze all --machine o3cpu > /dev/null

echo "==> static-vs-dynamic rank correlation (all three machines)"
cargo test -q --release --test static_vs_dynamic

echo "==> biaslint smoke (CLI output must match the blessed goldens, zero simulations)"
cargo test -q --release --test lint_gate
for machine in core2 pentium4 o3cpu; do
    golden="crates/analyze/tests/golden/lint_${machine}.jsonl"
    ./target/release/biaslab lint all --machine "$machine" --json | diff -u "$golden" - \
        || { echo "FATAL: biaslab lint all --json drifted from ${golden}" >&2; exit 1; }
done
./target/release/biaslab lint perlbench --machine core2 > /dev/null

echo "==> repro all --effort quick (smoke, ephemeral)"
./target/release/repro all --effort quick --no-resume > /dev/null

tmp="$(mktemp -d)"
# BENCH_ci.json is a transient artifact of `scripts/bench.sh ci` below; it is
# consumed by the throughput and telemetry guards and must not outlive the run.
trap 'rm -rf "$tmp" BENCH_ci.json' EXIT

echo "==> telemetry trace smoke (repro --trace, then render it)"
BIASLAB_RESULTS_DIR="$tmp/results" ./target/release/repro fig1 --effort quick --no-resume --trace \
    2>/dev/null > /dev/null
trace_file="$tmp/results/traces/repro-fig1-quick.jsonl"
[ -s "$trace_file" ] || { echo "FATAL: --trace wrote no trace file" >&2; exit 1; }
./target/release/biaslab trace "$trace_file" --summary > /dev/null
./target/release/biaslab trace "$trace_file" --flame > /dev/null

echo "==> kernel smoke (block dispatch vs collapsed fast path vs event path)"
BIASLAB_RESULTS_DIR="$tmp/kblock-results" BIASLAB_KERNEL=block \
    ./target/release/repro fig1 --effort quick --no-resume 2>/dev/null > "$tmp/kblock.out"
BIASLAB_RESULTS_DIR="$tmp/kfast-results" BIASLAB_KERNEL=collapsed \
    ./target/release/repro fig1 --effort quick --no-resume 2>/dev/null > "$tmp/kfast.out"
BIASLAB_RESULTS_DIR="$tmp/kevent-results" BIASLAB_KERNEL=event \
    ./target/release/repro fig1 --effort quick --no-resume 2>/dev/null > "$tmp/kevent.out"
cmp "$tmp/kblock.out" "$tmp/kfast.out" \
    || { echo "FATAL: stdout differs between block and collapsed kernels" >&2; exit 1; }
cmp "$tmp/kfast.out" "$tmp/kevent.out" \
    || { echo "FATAL: stdout differs between kernel paths" >&2; exit 1; }

echo "==> chaos smoke (repro all under a canned fault schedule)"
chaos_spec="seed=7,save.io=0.4,save.short=0.3,load.io=0.5,leader.panic=0.1,measure.delay=0.05,measure.runaway=0.02,worker.delay=0.2"
BIASLAB_RESULTS_DIR="$tmp/plain-results" ./target/release/repro all --effort quick \
    2>/dev/null > "$tmp/plain.out"
BIASLAB_RESULTS_DIR="$tmp/chaos-results" ./target/release/repro all --effort quick \
    --faults "$chaos_spec" 2>/dev/null > "$tmp/chaos.out"
cmp "$tmp/plain.out" "$tmp/chaos.out" \
    || { echo "FATAL: stdout differs under fault injection" >&2; exit 1; }
leaked="$(find "$tmp/chaos-results" "$tmp/plain-results" -name '*.tmp' 2>/dev/null || true)"
[ -z "$leaked" ] || { echo "FATAL: leaked tmp files: $leaked" >&2; exit 1; }

echo "==> serve smoke (daemon boot, loadgen, canned transcript, chaos schedule)"
sock="$tmp/serve.sock"
./target/release/biaslab serve --addr "unix:$sock" --workers 4 --queue 32 \
    > "$tmp/serve.log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 50); do [ -S "$sock" ] && break; sleep 0.1; done
[ -S "$sock" ] || { echo "FATAL: serve daemon did not bind $sock" >&2; exit 1; }
./target/release/biaslab loadgen --addr "unix:$sock" --clients 8 --requests 25 --seed 7 \
    > "$tmp/loadgen.out"
grep -q "serve.loadgen" "$tmp/loadgen.out" \
    || { echo "FATAL: loadgen produced no report" >&2; exit 1; }
grep -q "failed=0 " "$tmp/loadgen.out" \
    || { echo "FATAL: loadgen exchanges failed: $(cat "$tmp/loadgen.out")" >&2; exit 1; }
# Canned transcript: the same measure request twice (cold, then cached)
# must produce byte-identical response lines.
./target/release/biaslab client measure hmmer --addr "unix:$sock" --id 11 --opt O3 \
    > "$tmp/client-cold.out"
./target/release/biaslab client measure hmmer --addr "unix:$sock" --id 11 --opt O3 \
    > "$tmp/client-cached.out"
cmp "$tmp/client-cold.out" "$tmp/client-cached.out" \
    || { echo "FATAL: cached daemon response differs from cold" >&2; exit 1; }
./target/release/biaslab client shutdown --addr "unix:$sock" > /dev/null
wait "$serve_pid"
[ ! -e "$sock" ] || { echo "FATAL: daemon leaked its socket file" >&2; exit 1; }
# Chaos schedule: a daemon under seeded socket faults must still converge
# to the exact same transcript via client retries, then shut down cleanly.
BIASLAB_FAULTS="seed=99,serve.accept=0.2,serve.write.short=0.2,serve.drop=0.15" \
    ./target/release/biaslab serve --addr "unix:$sock" --workers 4 --queue 32 \
    > "$tmp/serve-chaos.log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 50); do [ -S "$sock" ] && break; sleep 0.1; done
[ -S "$sock" ] || { echo "FATAL: chaos daemon did not bind $sock" >&2; exit 1; }
./target/release/biaslab client measure hmmer --addr "unix:$sock" --id 11 --opt O3 \
    --attempts 12 > "$tmp/client-chaos.out"
cmp "$tmp/client-cold.out" "$tmp/client-chaos.out" \
    || { echo "FATAL: response under socket faults differs from fault-free" >&2; exit 1; }
./target/release/biaslab client shutdown --addr "unix:$sock" --attempts 12 > /dev/null || true
wait "$serve_pid" || true
[ ! -e "$sock" ] || { echo "FATAL: chaos daemon leaked its socket file" >&2; exit 1; }

echo "==> serve supervision smoke (worker panic -> respawn -> health ok)"
BIASLAB_FAULTS="seed=42,serve.worker_panic=@1" \
    ./target/release/biaslab serve --addr "unix:$sock" --workers 4 --queue 32 \
    > "$tmp/serve-sup.log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 50); do [ -S "$sock" ] && break; sleep 0.1; done
[ -S "$sock" ] || { echo "FATAL: supervised daemon did not bind $sock" >&2; exit 1; }
# The first measurement job trips the one-shot panic; the client gets a
# typed error terminal, never a hang or a torn line.
./target/release/biaslab client measure hmmer --addr "unix:$sock" --id 21 \
    > "$tmp/client-panic.out"
grep -q '"code":"panic"' "$tmp/client-panic.out" \
    || { echo "FATAL: injected worker panic not surfaced as typed error" >&2; exit 1; }
# The supervisor must respawn the worker and report health back at ok.
health=""
for _ in $(seq 1 50); do
    ./target/release/biaslab client stats --addr "unix:$sock" --id 22 > "$tmp/stats-sup.out"
    if grep -q '"health":"ok"' "$tmp/stats-sup.out"; then health=ok; break; fi
    sleep 0.1
done
[ "$health" = ok ] \
    || { echo "FATAL: health never returned to ok: $(cat "$tmp/stats-sup.out")" >&2; exit 1; }
respawns="$(sed -n 's/.*"serve\.worker\.respawn":\([0-9]*\).*/\1/p' "$tmp/stats-sup.out")"
[ -n "$respawns" ] && [ "$respawns" -ge 1 ] \
    || { echo "FATAL: no worker respawn recorded after injected panic" >&2; exit 1; }
# The recovered pool serves a full load run without a single failure.
./target/release/biaslab loadgen --addr "unix:$sock" --clients 4 --requests 10 --seed 11 \
    > "$tmp/loadgen-sup.out"
grep -q "failed=0 " "$tmp/loadgen-sup.out" \
    || { echo "FATAL: loadgen failed after respawn: $(cat "$tmp/loadgen-sup.out")" >&2; exit 1; }
./target/release/biaslab client shutdown --addr "unix:$sock" > /dev/null
wait "$serve_pid"

echo "==> serve SIGTERM drain smoke (in-flight sweep completes, socket removed)"
BIASLAB_RESULTS_DIR="$tmp/serve-results" \
    ./target/release/biaslab serve --addr "unix:$sock" --workers 2 --queue 32 \
    --drain-timeout 30000 > "$tmp/serve-drain.log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 50); do [ -S "$sock" ] && break; sleep 0.1; done
[ -S "$sock" ] || { echo "FATAL: drain daemon did not bind $sock" >&2; exit 1; }
./target/release/biaslab client sweep gcc --addr "unix:$sock" --id 31 \
    --envs 0,64,128,256,512,1024 > "$tmp/client-drain.out" &
client_pid=$!
sleep 0.2
kill -TERM "$serve_pid"
wait "$client_pid" \
    || { echo "FATAL: in-flight sweep died during drain" >&2; exit 1; }
items="$(grep -c '"ev":"item"' "$tmp/client-drain.out" || true)"
[ "$items" -eq 6 ] \
    || { echo "FATAL: drain lost sweep items (got $items of 6)" >&2; exit 1; }
grep -q '"status":"ok"' "$tmp/client-drain.out" \
    || { echo "FATAL: drained sweep missing ok terminal" >&2; exit 1; }
wait "$serve_pid" \
    || { echo "FATAL: daemon exited nonzero after SIGTERM drain" >&2; exit 1; }
[ ! -e "$sock" ] || { echo "FATAL: drained daemon leaked its socket file" >&2; exit 1; }
leaked="$(find "$tmp/serve-results" -name '*.tmp' 2>/dev/null || true)"
[ -z "$leaked" ] || { echo "FATAL: drain leaked journal tmp files: $leaked" >&2; exit 1; }

echo "==> scripts/bench.sh ci (bench smoke)"
./scripts/bench.sh ci

echo "==> simulator throughput guard (block dispatch must hold its 2x win)"
# PR 6 recorded simulate-unprofiled at 503.6 us/iter (BENCH_3.json); block
# dispatch must keep at least a 2x margin over that. The harness reports a
# minimum, so interference only ever pushes the number up, never under —
# retry with fresh bench processes before declaring a regression, since
# this step runs right after the build/test load peak.
sim_us="$(sed -n 's/.*"simulate-unprofiled": \([0-9.]*\).*/\1/p' BENCH_ci.json)"
[ -n "$sim_us" ] || { echo "FATAL: no simulate-unprofiled in BENCH_ci.json" >&2; exit 1; }
for attempt in 1 2 3; do
    echo "    simulate-unprofiled ${sim_us} us/iter (attempt ${attempt}), limit 251.8"
    awk -v us="$sim_us" 'BEGIN { exit !(us <= 251.8) }' && break
    if [ "$attempt" -eq 3 ]; then
        echo "FATAL: simulate-unprofiled ${sim_us} us/iter exceeds 251.8" >&2
        exit 1
    fi
    sleep 2
    retry_us="$(cargo bench -p biaslab-bench --bench hotpath 2>/dev/null \
        | sed -n 's/^bench simulate-unprofiled *\([0-9.]*\).*/\1/p')"
    [ -n "$retry_us" ] || { echo "FATAL: bench retry produced no number" >&2; exit 1; }
    sim_us="$(awk -v a="$sim_us" -v b="$retry_us" 'BEGIN { print (a < b) ? a : b }')"
done

echo "==> telemetry overhead guard (traced quick suite vs BENCH baseline)"
base_ms="$(sed -n 's/.*"quick_cold_ms": \([0-9]*\).*/\1/p' BENCH_ci.json)"
[ -n "$base_ms" ] || { echo "FATAL: no quick_cold_ms in BENCH_ci.json" >&2; exit 1; }
t0="$(date +%s%3N)"
BIASLAB_RESULTS_DIR="$tmp/traced-results" ./target/release/repro all --effort quick --trace \
    2>/dev/null > /dev/null
t1="$(date +%s%3N)"
traced_ms=$((t1 - t0))
# Tracing must stay within 5% of the untraced cold baseline, plus a 250 ms
# absolute allowance: quick runs are short enough for scheduler noise.
limit_ms=$((base_ms + base_ms / 20 + 250))
echo "    untraced ${base_ms} ms, traced ${traced_ms} ms, limit ${limit_ms} ms"
if [ "$traced_ms" -gt "$limit_ms" ]; then
    echo "FATAL: tracing overhead exceeds 5% of the quick-suite baseline" >&2
    exit 1
fi

echo "==> OK"
