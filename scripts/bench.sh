#!/usr/bin/env bash
# Times the measure path and records the perf trajectory as BENCH_<label>.json.
#
#   scripts/bench.sh [label]     # default label: dev
#
# Records: quick-suite wall time cold (empty cache) and resumed (persisted
# cache), plus the hotpath micro-benchmarks. Also asserts cold and resumed
# stdout are byte-identical — caching must never change output.
set -euo pipefail
cd "$(dirname "$0")/.."

LABEL="${1:-dev}"
OUT="BENCH_${LABEL}.json"

echo "==> cargo build --release -p biaslab-bench -p biaslab-cli"
cargo build --release -p biaslab-bench -p biaslab-cli

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

now_ms() { date +%s%3N; }

echo "==> repro all --effort quick (cold cache)"
t0="$(now_ms)"
BIASLAB_RESULTS_DIR="$tmp/results" ./target/release/repro all --effort quick \
    >"$tmp/cold.txt" 2>/dev/null
t1="$(now_ms)"
cold_ms=$((t1 - t0))

echo "==> repro all --effort quick (resumed cache)"
t0="$(now_ms)"
BIASLAB_RESULTS_DIR="$tmp/results" ./target/release/repro all --effort quick \
    >"$tmp/resumed.txt" 2>/dev/null
t1="$(now_ms)"
resumed_ms=$((t1 - t0))

cmp "$tmp/cold.txt" "$tmp/resumed.txt" \
    || { echo "FATAL: resumed stdout differs from cold stdout" >&2; exit 1; }

echo "==> serve throughput (loadgen against a local daemon)"
sock="$tmp/bench-serve.sock"
BIASLAB_RESULTS_DIR="$tmp/serve-results" \
    ./target/release/biaslab serve --addr "unix:$sock" >/dev/null 2>&1 &
serve_pid=$!
for _ in $(seq 1 50); do [ -S "$sock" ] && break; sleep 0.1; done
[ -S "$sock" ] || { echo "FATAL: serve daemon did not bind $sock" >&2; exit 1; }
serve_out="$(./target/release/biaslab loadgen --addr "unix:$sock" --clients 8 --requests 50 --seed 7)"
serve_stats="$(./target/release/biaslab client stats --addr "unix:$sock" --id 9999)"
./target/release/biaslab client shutdown --addr "unix:$sock" >/dev/null
wait "$serve_pid"
serve_rps="$(sed -n 's/.*rps=\([0-9.]*\).*/\1/p' <<<"$serve_out")"
serve_p50="$(sed -n 's/.*p50_us=\([0-9]*\).*/\1/p' <<<"$serve_out")"
serve_p99="$(sed -n 's/.*p99_us=\([0-9]*\).*/\1/p' <<<"$serve_out")"
serve_hit="$(sed -n 's/.*hit_rate=\([0-9.]*\).*/\1/p' <<<"$serve_out")"
[ -n "$serve_rps" ] || { echo "FATAL: loadgen reported no rps" >&2; exit 1; }
# Supervision counters from the daemon's own stats line; a fault-free
# bench run records zeros, and any drift from zero is a red flag in the
# perf trajectory.
serve_panics="$(sed -n 's/.*"serve\.worker\.panic":\([0-9]*\).*/\1/p' <<<"$serve_stats")"
serve_respawns="$(sed -n 's/.*"serve\.worker\.respawn":\([0-9]*\).*/\1/p' <<<"$serve_stats")"
serve_deadlines="$(sed -n 's/.*"serve\.deadline\.expired":\([0-9]*\).*/\1/p' <<<"$serve_stats")"

echo "==> cargo bench --bench hotpath"
hotpath_out="$(cargo bench -p biaslab-bench --bench hotpath 2>/dev/null)"
bench_out="$(grep '^bench ' <<<"${hotpath_out}" || true)"
stat_out="$(grep '^stat ' <<<"${hotpath_out}" || true)"

{
    echo "{"
    echo "  \"label\": \"${LABEL}\","
    echo "  \"quick_cold_ms\": ${cold_ms},"
    echo "  \"quick_resumed_ms\": ${resumed_ms},"
    echo "  \"serve\": {"
    echo "    \"rps\": ${serve_rps},"
    echo "    \"p50_us\": ${serve_p50},"
    echo "    \"p99_us\": ${serve_p99},"
    echo "    \"hit_rate\": ${serve_hit},"
    echo "    \"worker_panics\": ${serve_panics:-0},"
    echo "    \"worker_respawns\": ${serve_respawns:-0},"
    echo "    \"deadline_expired\": ${serve_deadlines:-0}"
    echo "  },"
    echo "  \"micro_us_per_iter\": {"
    first=1
    while read -r _ id us _rest; do
        [ -n "${id}" ] || continue
        [ "${first}" -eq 1 ] || printf ',\n'
        first=0
        printf '    "%s": %s' "${id}" "${us}"
    done <<<"${bench_out}"
    printf '\n  },\n'
    echo "  \"block_cache\": {"
    first=1
    while read -r _ id val; do
        [ -n "${id}" ] || continue
        [ "${first}" -eq 1 ] || printf ',\n'
        first=0
        printf '    "%s": %s' "${id}" "${val}"
    done <<<"${stat_out}"
    printf '\n  }\n'
    echo "}"
} >"$OUT"

echo "==> wrote ${OUT}"
cat "$OUT"
