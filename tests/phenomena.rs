//! Integration tests for the paper's claims themselves: the biases exist,
//! have the documented structure, and the remedies behave as advertised.
//! These are shape assertions (who varies, what is periodic, what is
//! silent), not absolute-number assertions.

use biaslab_core::causal::{CausalExperiment, Intervention, Mediator};
use biaslab_core::harness::Harness;
use biaslab_core::randomize::{randomized_eval, RandomizedFactors};
use biaslab_core::setup::{ExperimentSetup, LinkOrder};
use biaslab_toolchain::OptLevel;
use biaslab_uarch::MachineConfig;
use biaslab_workloads::{benchmark_by_name, InputSize};

fn harness(name: &str) -> Harness {
    Harness::new(benchmark_by_name(name).expect("known benchmark"))
}

#[test]
fn stack_shift_bias_is_periodic_in_the_bank_geometry() {
    // perlbench on o3cpu: the cycle counts as a function of stack shift
    // must repeat with period 64 (banks × interleave) — the Fig. 7 shape.
    let h = harness("perlbench");
    let base = ExperimentSetup::default_on(MachineConfig::o3cpu(), OptLevel::O2);
    let cycles: Vec<u64> = (0..8u32)
        .map(|i| {
            let mut s = base.clone();
            s.stack_shift = i * 16;
            h.measure(&s, InputSize::Test).unwrap().counters.cycles
        })
        .collect();
    // Period 64 = 4 steps of 16, up to a few cycles of page-boundary
    // (TLB) noise as the whole stack drifts across pages.
    for k in 0..4 {
        let diff = cycles[k].abs_diff(cycles[k + 4]);
        assert!(diff <= 16, "period-64 violated at phase {k}: {cycles:?}");
    }
    // And not constant: the bias exists (well beyond the noise allowance).
    let min = *cycles.iter().min().expect("nonempty");
    let max = *cycles.iter().max().expect("nonempty");
    assert!(
        max - min > 1000,
        "bias too small to be the phenomenon: {cycles:?}"
    );
}

#[test]
fn link_order_moves_cycles_on_every_machine() {
    let h = harness("perlbench");
    for machine in MachineConfig::all() {
        let base = ExperimentSetup::default_on(machine.clone(), OptLevel::O2);
        let mut distinct = std::collections::HashSet::new();
        for order in [
            LinkOrder::Default,
            LinkOrder::Reversed,
            LinkOrder::Alphabetical,
            LinkOrder::Random(1),
            LinkOrder::Random(2),
        ] {
            let m = h
                .measure(&base.with_link_order(order), InputSize::Test)
                .unwrap();
            distinct.insert(m.counters.cycles);
        }
        assert!(
            distinct.len() > 1,
            "link order should move cycles on {}",
            machine.name
        );
    }
}

#[test]
fn causal_analysis_confirms_stack_and_rejects_placebo() {
    let h = harness("perlbench");
    let base = ExperimentSetup::default_on(MachineConfig::o3cpu(), OptLevel::O2);
    let mut exp = CausalExperiment::new(base, Intervention::StackShift, 256, 16);
    exp.mediator = Mediator::BankConflicts;
    let report = exp.run(&h, InputSize::Test).unwrap();
    assert!(
        report.confirmed,
        "stack shift must be identified as causal: {report:?}"
    );
    assert!(
        report.placebo_effect < 1e-9,
        "placebo must be exactly silent"
    );
    let r = report.mediator_correlation.expect("both series vary");
    assert!(r > 0.9, "bank conflicts should mediate the effect, r={r}");
}

#[test]
fn randomized_evaluation_is_reproducible_and_interval_covers_mean() {
    let h = harness("gcc");
    let eval = randomized_eval(
        &h,
        &MachineConfig::core2(),
        OptLevel::O2,
        OptLevel::O3,
        RandomizedFactors::default(),
        8,
        7,
        InputSize::Test,
    )
    .unwrap();
    assert!(eval.ci.contains(eval.mean_speedup));
    assert_eq!(eval.observations.len(), 8);
    // The same seed replays the same setups bit-for-bit.
    let again = randomized_eval(
        &h,
        &MachineConfig::core2(),
        OptLevel::O2,
        OptLevel::O3,
        RandomizedFactors::default(),
        8,
        7,
        InputSize::Test,
    )
    .unwrap();
    assert_eq!(eval.mean_speedup, again.mean_speedup);
    assert_eq!(eval.ci, again.ci);
}

#[test]
fn survey_regenerates_the_headline_zeroes() {
    let table = biaslab_survey::tabulate(&biaslab_survey::corpus(0));
    assert_eq!(table.total_papers, 133);
    assert_eq!(
        table
            .row(biaslab_survey::ReportedAspect::EnvironmentSize)
            .total,
        0
    );
    assert_eq!(
        table.row(biaslab_survey::ReportedAspect::LinkOrder).total,
        0
    );
}
