//! Chaos battery for the serving layer: seeded socket-fault schedules
//! (accept failures, short writes, mid-response disconnects, slow
//! clients) may cost reconnects and retries, but clients always end with
//! a typed error or a retried success — never a torn JSONL line — and
//! the daemon never wedges, never leaks admission-queue jobs, and never
//! leaves its socket file behind.
//!
//! Fault state is process-global, so every test holds the
//! [`faults::scoped`] guard for its whole body; schedules swap via
//! [`faults::install`] under the same guard. The `@n` one-shot trigger
//! gives an exact-replay regression: the same schedule, re-installed,
//! produces the same retry count.

use std::sync::Arc;

use biaslab_core::faults::{self, FaultSpec};
use biaslab_core::serve::{
    self, encode_control, encode_measure, encode_response, validate_response_line, Addr, Client,
    MeasureSpec, Server, ServerConfig,
};
use biaslab_core::setup::LinkOrder;
use biaslab_core::Orchestrator;
use biaslab_toolchain::OptLevel;
use biaslab_workloads::InputSize;

/// The seeded socket-fault schedules under test. Probabilities are low
/// enough that an 8-attempt retry budget makes exchange failure
/// vanishingly unlikely, high enough that every site fires many times
/// over a run.
const SCHEDULES: &[(&str, &str)] = &[
    ("accept-flaky", "seed=101,serve.accept=0.25"),
    (
        "torn-and-dropped",
        "seed=202,serve.write.short=0.2,serve.drop=0.15,serve.slow=0.3",
    ),
    (
        "everything-at-once",
        "seed=303,serve.accept=0.15,serve.write.short=0.15,serve.drop=0.1,serve.slow=0.2",
    ),
];

fn spec(s: &str) -> FaultSpec {
    FaultSpec::parse(s).expect("test specs parse")
}

fn temp_sock(tag: &str) -> Addr {
    let dir = std::env::temp_dir();
    Addr::Unix(dir.join(format!("biaslab-schaos-{tag}-{}.sock", std::process::id())))
}

fn pool() -> Vec<MeasureSpec> {
    (0..6u64)
        .map(|i| MeasureSpec {
            bench: "hmmer".to_owned(),
            machine: "core2".to_owned(),
            opt: if i % 2 == 0 {
                OptLevel::O2
            } else {
                OptLevel::O3
            },
            order: if i < 3 {
                LinkOrder::Default
            } else {
                LinkOrder::Random(i)
            },
            text_offset: 0,
            stack_shift: 0,
            env: [0u64, 64, 612][(i % 3) as usize],
            size: InputSize::Test,
            budget: 0,
        })
        .collect()
}

/// Every schedule: concurrent clients under fire all end in verified
/// success, every line passes the crc seal and schema check, responses
/// still match the direct path byte-for-byte, the admission queue drains,
/// and the socket file is removed.
#[test]
fn seeded_socket_schedules_never_tear_or_wedge() {
    let _guard = faults::scoped(&spec("seed=1"));
    // Direct-path expectations, computed fault-free (serve.* sites only
    // fire at the socket layer, but a clean registry keeps this exact).
    let direct = Orchestrator::default();
    let pool = pool();
    let expected: Vec<String> = pool
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let harness = direct.harness(&s.bench).expect("known benchmark");
            let result = direct.measure(&harness, &s.setup().expect("known machine"), s.size);
            encode_response(i as u64, &result)
        })
        .collect();

    for (name, schedule) in SCHEDULES {
        faults::install(&spec(schedule));
        let addr = temp_sock(name);
        let server = Server::start(
            &ServerConfig::new(addr.clone()),
            Arc::new(Orchestrator::default()),
        )
        .expect("server starts");

        const CLIENTS: usize = 4;
        const ROUNDS: usize = 3;
        let retries: u64 = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|_| {
                    let addr = addr.clone();
                    let pool = &pool;
                    let expected = &expected;
                    scope.spawn(move || {
                        let mut client = Client::new(addr).with_attempts(8);
                        let mut retries = 0u64;
                        for _ in 0..ROUNDS {
                            for (i, s) in pool.iter().enumerate() {
                                let ex = client
                                    .request(&encode_measure(i as u64, s))
                                    .unwrap_or_else(|e| {
                                        panic!(
                                            "schedule {name}: exchange failed after retries: {e}"
                                        )
                                    });
                                retries += u64::from(ex.retries);
                                for line in &ex.lines {
                                    validate_response_line(line).unwrap_or_else(|e| {
                                        panic!("schedule {name}: torn/invalid line: {e}")
                                    });
                                }
                                assert_eq!(
                                    ex.terminal(),
                                    expected[i],
                                    "schedule {name}: response diverged under faults"
                                );
                            }
                        }
                        retries
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .sum()
        });

        assert!(
            retries > 0,
            "schedule {name}: no fault ever fired — schedule is not exercising the socket layer"
        );
        assert_eq!(
            server.queue_len(),
            0,
            "schedule {name}: admission queue leaked jobs"
        );
        server.shutdown();
        if let Addr::Unix(path) = &addr {
            assert!(
                !path.exists(),
                "schedule {name}: socket file leaked: {}",
                path.display()
            );
        }
    }
}

/// Exact replay: a one-shot `@1` short-write trigger tears exactly the
/// first response write, so a single client sees exactly one retry —
/// and re-installing the same schedule reproduces it exactly.
#[test]
fn one_shot_trigger_replays_exactly() {
    let _guard = faults::scoped(&spec("seed=1"));
    for round in 0..2 {
        faults::install(&spec("seed=404,serve.write.short=@1"));
        let addr = temp_sock(&format!("replay{round}"));
        let server = Server::start(
            &ServerConfig::new(addr.clone()),
            Arc::new(Orchestrator::default()),
        )
        .expect("server starts");
        let mut client = Client::new(addr);
        let ex = client
            .request(&encode_control(1, "ping"))
            .expect("retried success");
        assert_eq!(
            ex.retries, 1,
            "round {round}: @1 short-write must cost exactly one retry"
        );
        assert_eq!(serve::line_status(ex.terminal()), Some("ok"));
        let ex = client
            .request(&encode_control(2, "ping"))
            .expect("clean exchange");
        assert_eq!(
            ex.retries, 0,
            "round {round}: one-shot trigger must not re-fire"
        );
        server.shutdown();
    }
}

/// Worker panics under load: the pool shrinks and recovers through the
/// supervisor, every victim client gets exactly one typed `panic`
/// terminal (no lost or duplicated responses, no failed exchanges), the
/// respawn counter moves, and health returns to `ok` at full strength.
#[test]
fn worker_panic_schedule_shrinks_then_recovers_the_pool() {
    let _guard = faults::scoped(&spec("seed=1"));
    faults::install(&spec("seed=606,serve.worker_panic=0.08"));
    let addr = temp_sock("wpanic");
    let mut cfg = ServerConfig::new(addr.clone());
    cfg.workers = 3;
    cfg.restart_budget = 256; // never exhaust: the pool must always recover
    cfg.restart_seed = 606;
    let server = Server::start(&cfg, Arc::new(Orchestrator::default())).expect("server starts");

    let direct = Orchestrator::default();
    let pool = pool();
    let expected: Vec<String> = pool
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let harness = direct.harness(&s.bench).expect("known benchmark");
            let result = direct.measure(&harness, &s.setup().expect("known machine"), s.size);
            encode_response(i as u64, &result)
        })
        .collect();

    const CLIENTS: usize = 4;
    const ROUNDS: usize = 4;
    let panics: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let addr = addr.clone();
                let pool = &pool;
                let expected = &expected;
                scope.spawn(move || {
                    let mut client = Client::new(addr).with_backoff_seed(c as u64);
                    let mut panics = 0u64;
                    for _ in 0..ROUNDS {
                        for (i, s) in pool.iter().enumerate() {
                            let ex = client
                                .request(&encode_measure(i as u64, s))
                                .expect("every exchange ends in a terminal, never a failure");
                            for line in &ex.lines {
                                validate_response_line(line)
                                    .expect("sealed, schema-valid lines under worker panics");
                            }
                            match serve::line_status(ex.terminal()) {
                                Some("ok") => assert_eq!(
                                    ex.terminal(),
                                    expected[i],
                                    "ok responses stay byte-identical under panics"
                                ),
                                Some("err") => {
                                    assert!(
                                        ex.terminal().contains("\"code\":\"panic\""),
                                        "only typed panic errors expected: {}",
                                        ex.terminal()
                                    );
                                    panics += 1;
                                }
                                other => panic!("unexpected terminal status {other:?}"),
                            }
                        }
                    }
                    panics
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .sum()
    });
    assert!(
        panics >= 1,
        "the 8% panic schedule never fired over {} requests",
        CLIENTS * ROUNDS * pool.len()
    );

    // The supervisor must restore the pool to configured strength and
    // health to `ok` (respawn delays are capped under ~200ms each).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while (server.live_workers() < cfg.workers || server.health() != "ok")
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert_eq!(server.live_workers(), cfg.workers, "pool recovered");
    assert_eq!(server.health(), "ok", "health degraded -> ok");

    // The daemon's own accounting agrees: panics were observed and every
    // one of them was answered by a respawn.
    let mut client = Client::new(addr);
    let ex = client
        .request(&encode_control(999, "stats"))
        .expect("stats answered");
    let stat = |name: &str| serve::stats_counter(ex.terminal(), name).unwrap_or(0);
    assert_eq!(serve::line_health(ex.terminal()), Some("ok"));
    assert!(stat("serve.worker.panic") >= panics, "panics counted");
    assert_eq!(
        stat("serve.worker.panic"),
        stat("serve.worker.respawn"),
        "every panic within budget is matched by a respawn"
    );
    assert_eq!(server.queue_len(), 0, "admission queue drained");
    server.shutdown();
}

/// A mid-response disconnect on a sweep still converges: the client
/// replays the whole request and the daemon's caches serve the retry,
/// ending in a complete, seal-verified item stream.
#[test]
fn dropped_sweep_replays_to_completion() {
    let _guard = faults::scoped(&spec("seed=1"));
    faults::install(&spec("seed=505,serve.drop=@2"));
    let addr = temp_sock("dropsweep");
    let server = Server::start(
        &ServerConfig::new(addr.clone()),
        Arc::new(Orchestrator::default()),
    )
    .expect("server starts");
    let s = MeasureSpec {
        bench: "mcf".to_owned(),
        machine: "core2".to_owned(),
        opt: OptLevel::O2,
        order: LinkOrder::Default,
        text_offset: 0,
        stack_shift: 0,
        env: 0,
        size: InputSize::Test,
        budget: 0,
    };
    let mut client = Client::new(addr).with_attempts(6);
    let ex = client
        .request(&serve::encode_sweep(9, &s, &[0, 64, 128]))
        .expect("sweep converges after the drop");
    assert!(
        ex.retries >= 1,
        "the @2 drop must interrupt the first stream"
    );
    assert_eq!(
        ex.lines.len(),
        4,
        "3 items + terminal, nothing torn: {:?}",
        ex.lines
    );
    for line in &ex.lines {
        validate_response_line(line).expect("every replayed line is sealed and schema-valid");
    }
    server.shutdown();
}
