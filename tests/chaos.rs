//! Chaos suite: the measure path under deterministic fault schedules.
//!
//! Every test installs a seeded [`biaslab_core::faults`] schedule and
//! asserts the robustness contract: injected I/O errors, short writes,
//! leader panics, runaway simulations and scheduling delays may cost
//! retries and stderr warnings, but they can never change a figure —
//! counters and `repro all` stdout stay byte-identical to a fault-free
//! run — never wedge a lock, and never leak a half-written `.tmp` file.
//!
//! Fault state is process-global, so every test holds the
//! [`faults::scoped`] guard for its entire body (the baseline phases run
//! under a sites-free spec: the layer is active but nothing can fire);
//! schedules then swap via [`faults::install`] under the same guard.

use std::fs;
use std::path::{Path, PathBuf};

use biaslab_bench::experiments::{Effort, ExperimentInfo};
use biaslab_bench::parallel::run_all;
use biaslab_bench::EXPERIMENTS;
use biaslab_core::faults::{self, FaultSpec};
use biaslab_core::setup::{ExperimentSetup, LinkOrder};
use biaslab_core::Orchestrator;
use biaslab_toolchain::load::Environment;
use biaslab_toolchain::OptLevel;
use biaslab_uarch::{Counters, MachineConfig};
use biaslab_workloads::InputSize;

/// The seeded schedules under test. Together they cover every injection
/// site except the deliberately unrecoverable hard leader panic (which
/// gets its own takeover regression in `tests/error_paths.rs`).
const SCHEDULES: &[(&str, &str)] = &[
    ("io-errors", "seed=11,save.io=0.5,load.io=0.5"),
    ("torn-writes", "seed=22,save.short=0.6,save.io=0.2"),
    ("leader-panics", "seed=33,leader.panic=@1,measure.delay=0.4"),
    (
        "runaway-and-jitter",
        "seed=44,measure.runaway=0.5,worker.delay=0.5,measure.delay=0.2",
    ),
];

fn spec(s: &str) -> FaultSpec {
    FaultSpec::parse(s).expect("test specs parse")
}

fn setups() -> Vec<ExperimentSetup> {
    let base = ExperimentSetup::default_on(MachineConfig::core2(), OptLevel::O2);
    (0..4u32)
        .map(|i| {
            base.with_env(Environment::of_total_size(112 * i + 112))
                .with_link_order(LinkOrder::Random(u64::from(i)))
        })
        .collect()
}

/// Counters via the single-flight `measure` path (exercises the leader
/// protocol and the watchdog).
fn measured_counters(orch: &Orchestrator) -> Vec<Counters> {
    let h = orch.harness("perlbench").expect("known benchmark");
    setups()
        .iter()
        .map(|s| {
            orch.measure(&h, s, InputSize::Test)
                .expect("measurement")
                .counters
        })
        .collect()
}

/// Counters via the parallel `sweep` path (exercises the worker pool).
fn swept_counters(orch: &Orchestrator) -> Vec<Counters> {
    let h = orch.harness("perlbench").expect("known benchmark");
    orch.sweep(&h, &setups(), InputSize::Test)
        .into_iter()
        .map(|r| r.expect("measurement").counters)
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("biaslab-chaos-{tag}-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn assert_no_tmp_leaked(dir: &Path) {
    let leaked: Vec<PathBuf> = fs::read_dir(dir)
        .expect("read temp dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "tmp"))
        .collect();
    assert!(leaked.is_empty(), "leaked tmp files: {leaked:?}");
}

#[test]
fn counters_are_identical_under_every_fault_schedule() {
    let _guard = faults::scoped(&spec("seed=1"));
    let reference = measured_counters(&Orchestrator::new());
    for (name, s) in SCHEDULES {
        faults::install(&spec(s));
        let orch = Orchestrator::new();
        assert_eq!(measured_counters(&orch), reference, "measure under {name}");
        // A fresh orchestrator per path so both actually simulate.
        let orch = Orchestrator::new();
        assert_eq!(swept_counters(&orch), reference, "sweep under {name}");
        // And the cached second pass, still under faults.
        assert_eq!(
            swept_counters(&orch),
            reference,
            "cached sweep under {name}"
        );
    }
}

#[test]
fn repro_all_stdout_is_byte_identical_under_faults() {
    let _guard = faults::scoped(&spec("seed=1"));
    let exps: Vec<ExperimentInfo> = EXPERIMENTS
        .iter()
        .filter(|e| e.id == "table1")
        .copied()
        .collect();
    assert_eq!(exps.len(), 1);
    let mut reference = Vec::new();
    run_all(&exps, Effort::Quick, 2, &mut reference, |_| {}).expect("write to Vec");
    for (name, s) in SCHEDULES {
        faults::install(&spec(s));
        let dir = temp_dir(name);
        let path = dir.join("measurements.jsonl");
        let mut out = Vec::new();
        // Persist after each block like `repro all` does; injected save
        // faults hit real record lines from the global cache.
        let failures = run_all(&exps, Effort::Quick, 2, &mut out, |_| {
            Orchestrator::global().persist(&path);
        })
        .expect("write to Vec");
        assert_eq!(failures, 0, "no experiment may panic under {name}");
        assert_eq!(out, reference, "stdout under {name}");
        assert_no_tmp_leaked(&dir);
        fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn persist_and_load_retry_through_one_shot_io_faults() {
    let _guard = faults::scoped(&spec("seed=5,save.io=@1,load.io=@1"));
    let orch = Orchestrator::new();
    let h = orch.harness("hmmer").expect("known benchmark");
    let setup = ExperimentSetup::default_on(MachineConfig::core2(), OptLevel::O2);
    let m = orch
        .measure(&h, &setup, InputSize::Test)
        .expect("measurement");
    let dir = temp_dir("oneshot");
    let path = dir.join("measurements.jsonl");
    // The first write attempt hits the injected error; the bounded retry
    // lands the record without degrading or leaving the temp file behind.
    assert_eq!(orch.persist(&path), 1);
    assert!(!orch.persist_degraded());
    assert_no_tmp_leaked(&dir);
    // Same on the read side: first read fails, the retry restores it.
    let fresh = Orchestrator::new();
    assert_eq!(
        fresh.load(&path).expect("load retries through the fault"),
        1
    );
    let again = fresh.measure(&h, &setup, InputSize::Test).expect("cached");
    assert_eq!(again.counters, m.counters);
    assert_eq!(fresh.stats().hits, 1, "restored record serves from cache");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn persist_degrades_to_in_memory_when_the_disk_keeps_failing() {
    let _guard = faults::scoped(&spec("seed=6,save.io=1.0"));
    let orch = Orchestrator::new();
    let h = orch.harness("hmmer").expect("known benchmark");
    let setup = ExperimentSetup::default_on(MachineConfig::core2(), OptLevel::O2);
    let m = orch
        .measure(&h, &setup, InputSize::Test)
        .expect("measurement");
    let dir = temp_dir("degraded");
    let path = dir.join("measurements.jsonl");
    assert_eq!(orch.persist(&path), 0, "every attempt fails at p=1");
    assert!(orch.persist_degraded());
    assert!(!path.exists(), "no partial results file");
    assert_no_tmp_leaked(&dir);
    // Degradation is sticky (no further I/O) but purely about persistence:
    // the orchestrator keeps serving measurements from memory.
    assert_eq!(orch.persist(&path), 0);
    let again = orch.measure(&h, &setup, InputSize::Test).expect("cached");
    assert_eq!(again.counters, m.counters);
    fs::remove_dir_all(&dir).ok();
}
