//! Differential battery for the serving layer: responses from a live
//! `biaslab serve` daemon must be **byte-identical** to what the direct,
//! in-process `Orchestrator` path produces for the same requests —
//! including cached-error and watchdog outcomes — under concurrent
//! clients issuing randomized request orders.
//!
//! The protocol schema itself is pinned as a golden snapshot
//! (`tests/golden/serve_schema.txt`, regenerate with `BIASLAB_BLESS=1`),
//! so accidental wire-format drift fails here rather than in a user's
//! transcript diff.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use biaslab_core::serve::{
    self, encode_measure, encode_response, encode_sweep, encode_sweep_done, encode_sweep_item,
    validate_response_line, Addr, Client, MeasureSpec, Server, ServerConfig,
};
use biaslab_core::Orchestrator;
use biaslab_toolchain::OptLevel;
use biaslab_workloads::InputSize;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn temp_sock(tag: &str) -> Addr {
    let dir = std::env::temp_dir();
    Addr::Unix(dir.join(format!("biaslab-sdiff-{tag}-{}.sock", std::process::id())))
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/serve_schema.txt")
}

/// Computes the direct-path response bytes for one measure request.
fn direct_response(orch: &Orchestrator, id: u64, spec: &MeasureSpec) -> String {
    let harness = orch.harness(&spec.bench).expect("known benchmark");
    let setup = spec.setup().expect("known machine");
    let result = orch.measure(&harness, &setup, spec.size);
    encode_response(id, &result)
}

#[test]
fn protocol_schema_matches_golden() {
    let actual = serve::schema();
    let path = golden_path();
    if std::env::var_os("BIASLAB_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("has parent")).expect("mkdir");
        std::fs::write(&path, &actual).expect("write golden file");
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run `BIASLAB_BLESS=1 cargo test --test serve_differential` \
             to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "serve protocol schema drifted; if intentional, re-bless with BIASLAB_BLESS=1"
    );
}

/// The headline gate: 8 concurrent clients replay the same randomized
/// spec pool in independently shuffled orders; every daemon response must
/// equal the direct-path encoding for that request, byte for byte.
#[test]
fn concurrent_clients_match_direct_path_byte_for_byte() {
    let addr = temp_sock("conc");
    let server = Server::start(
        &ServerConfig::new(addr.clone()),
        Arc::new(Orchestrator::default()),
    )
    .expect("server starts");

    // A shared pool of randomized setups (drawn from the same generator
    // loadgen uses), issued by every client in a client-specific order.
    let mut rng = StdRng::seed_from_u64(0xd1ff);
    let pool: Vec<MeasureSpec> = (0..12).map(|_| serve::random_spec(&mut rng)).collect();

    const CLIENTS: usize = 8;
    let responses: Vec<Vec<(u64, String)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|ci| {
                let pool = pool.clone();
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut order: Vec<usize> = (0..pool.len()).collect();
                    order.shuffle(&mut StdRng::seed_from_u64(ci as u64 + 1));
                    let mut client = Client::new(addr);
                    order
                        .into_iter()
                        .map(|pi| {
                            let id = ci as u64 * 1_000_000 + pi as u64;
                            let ex = client
                                .request(&encode_measure(id, &pool[pi]))
                                .expect("fault-free exchange succeeds");
                            assert_eq!(ex.retries, 0, "no faults installed, no retries");
                            (id, ex.terminal().to_owned())
                        })
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });

    // Direct path: one fresh orchestrator, same specs. The daemon used its
    // own orchestrator, so matching bytes proves the serving layer adds
    // nothing and loses nothing.
    let direct = Orchestrator::default();
    let mut expected: HashMap<u64, String> = HashMap::new();
    for ci in 0..CLIENTS {
        for (pi, spec) in pool.iter().enumerate() {
            let id = ci as u64 * 1_000_000 + pi as u64;
            expected.insert(id, direct_response(&direct, id, spec));
        }
    }
    let mut compared = 0usize;
    for per_client in &responses {
        for (id, line) in per_client {
            validate_response_line(line).expect("daemon line is schema-valid");
            assert_eq!(line, &expected[id], "daemon response for id {id} diverged");
            compared += 1;
        }
    }
    assert_eq!(compared, CLIENTS * pool.len());
    server.shutdown();
}

/// Sweeps must also match: every item line and the terminal line.
#[test]
fn sweep_items_match_direct_path_byte_for_byte() {
    let addr = temp_sock("sweep");
    let server = Server::start(
        &ServerConfig::new(addr.clone()),
        Arc::new(Orchestrator::default()),
    )
    .expect("server starts");
    let spec = MeasureSpec {
        bench: "milc".to_owned(),
        machine: "pentium4".to_owned(),
        opt: OptLevel::O3,
        order: biaslab_core::setup::LinkOrder::Random(5),
        text_offset: 0,
        stack_shift: 0,
        env: 0,
        size: InputSize::Test,
        budget: 0,
    };
    let envs: Vec<u64> = vec![0, 64, 128, 612];

    let mut client = Client::new(addr);
    let ex = client
        .request(&encode_sweep(42, &spec, &envs))
        .expect("sweep answered");

    let direct = Orchestrator::default();
    let harness = direct.harness("milc").expect("known benchmark");
    let base = spec.setup().expect("known machine");
    let setups = serve::sweep_setups(&base, &envs);
    let results = direct.sweep(&harness, &setups, spec.size);
    let mut want: Vec<String> = results
        .iter()
        .enumerate()
        .map(|(i, r)| encode_sweep_item(42, i as u64, r))
        .collect();
    want.push(encode_sweep_done(42, results.len() as u64));

    assert_eq!(ex.lines, want, "sweep stream diverged from the direct path");
    for line in &ex.lines {
        validate_response_line(line).expect("sweep line is schema-valid");
    }
    server.shutdown();
}

/// Watchdog and error-cache outcomes cross the wire unchanged: a tiny
/// instruction-budget override trips the watchdog deterministically, the
/// error is cached, and a re-request returns the identical bytes.
#[test]
fn watchdog_and_cached_errors_cross_the_wire() {
    let addr = temp_sock("wdog");
    let server = Server::start(
        &ServerConfig::new(addr.clone()),
        Arc::new(Orchestrator::default()),
    )
    .expect("server starts");
    let spec = MeasureSpec {
        bench: "hmmer".to_owned(),
        machine: "core2".to_owned(),
        opt: OptLevel::O2,
        order: biaslab_core::setup::LinkOrder::Default,
        text_offset: 0,
        stack_shift: 0,
        env: 0,
        size: InputSize::Test,
        budget: 64, // far below any real instruction count
    };

    let mut client = Client::new(addr);
    let first = client
        .request(&encode_measure(7, &spec))
        .expect("first answered");
    let again = client
        .request(&encode_measure(8, &spec))
        .expect("second answered");
    assert_eq!(serve::line_status(first.terminal()), Some("err"));
    assert!(
        first.terminal().contains("\"code\":\"watchdog\""),
        "expected a watchdog error, got: {}",
        first.terminal()
    );

    let direct = Orchestrator::default();
    assert_eq!(first.terminal(), direct_response(&direct, 7, &spec));
    // The daemon's second answer comes from its error cache; the direct
    // side's second call is also cached. Same bytes either way.
    assert_eq!(again.terminal(), direct_response(&direct, 8, &spec));
    server.shutdown();
}

/// Unknown benchmarks come back as typed `bench` errors, not hangs or
/// connection drops, and the daemon keeps serving afterwards.
#[test]
fn unknown_benchmark_is_a_typed_error() {
    let addr = temp_sock("nobench");
    let server = Server::start(
        &ServerConfig::new(addr.clone()),
        Arc::new(Orchestrator::default()),
    )
    .expect("server starts");
    let mut spec = MeasureSpec {
        bench: "not-a-benchmark".to_owned(),
        machine: "core2".to_owned(),
        opt: OptLevel::O2,
        order: biaslab_core::setup::LinkOrder::Default,
        text_offset: 0,
        stack_shift: 0,
        env: 0,
        size: InputSize::Test,
        budget: 0,
    };
    let mut client = Client::new(addr);
    let ex = client.request(&encode_measure(1, &spec)).expect("answered");
    assert_eq!(serve::line_status(ex.terminal()), Some("err"));
    assert!(ex.terminal().contains("\"code\":\"bench\""));
    validate_response_line(ex.terminal()).expect("typed error is schema-valid");

    spec.bench = "hmmer".to_owned();
    let ok = client
        .request(&encode_measure(2, &spec))
        .expect("daemon still serves");
    assert_eq!(serve::line_status(ok.terminal()), Some("ok"));
    server.shutdown();
}
