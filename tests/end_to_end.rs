//! The workspace's central differential test: every benchmark, compiled at
//! every optimization level and run on every machine model, must reproduce
//! the IR interpreter's checksum and return value exactly. Measurement
//! bias may move *cycles*; it must never move *results*.

use biaslab_core::harness::Harness;
use biaslab_core::setup::ExperimentSetup;
use biaslab_toolchain::OptLevel;
use biaslab_uarch::MachineConfig;
use biaslab_workloads::{suite, InputSize};

#[test]
fn all_benchmarks_verify_at_every_level_on_core2() {
    for bench in suite() {
        let name = bench.name();
        let harness = Harness::new(bench);
        for level in OptLevel::ALL {
            let setup = ExperimentSetup::default_on(MachineConfig::core2(), level);
            harness
                .measure(&setup, InputSize::Test)
                .unwrap_or_else(|e| panic!("{name} at {level}: {e}"));
        }
    }
}

#[test]
fn all_benchmarks_verify_on_every_machine_at_o2_and_o3() {
    for bench in suite() {
        let name = bench.name();
        let harness = Harness::new(bench);
        for machine in MachineConfig::all() {
            for level in [OptLevel::O2, OptLevel::O3] {
                let setup = ExperimentSetup::default_on(machine.clone(), level);
                harness
                    .measure(&setup, InputSize::Test)
                    .unwrap_or_else(|e| panic!("{name} on {} at {level}: {e}", machine.name));
            }
        }
    }
}

#[test]
fn optimization_reduces_instructions_for_most_benchmarks() {
    // O2 should retire fewer instructions than O0 almost everywhere
    // (promotion removes local traffic). Recursion-dominated codes can pay
    // more in callee-saved save/restores than promotion saves — real
    // compilers show the same corner — so the bound is: strictly fewer for
    // at least 10 of 12, and never more than 2% worse.
    let mut strictly_fewer = 0;
    for bench in suite() {
        let name = bench.name();
        let harness = Harness::new(bench);
        let o0 = harness
            .measure(
                &ExperimentSetup::default_on(MachineConfig::core2(), OptLevel::O0),
                InputSize::Test,
            )
            .unwrap();
        let o2 = harness
            .measure(
                &ExperimentSetup::default_on(MachineConfig::core2(), OptLevel::O2),
                InputSize::Test,
            )
            .unwrap();
        if o2.counters.instructions < o0.counters.instructions {
            strictly_fewer += 1;
        }
        assert!(
            (o2.counters.instructions as f64) < 1.02 * o0.counters.instructions as f64,
            "{name}: O2 {} vs O0 {} exceeds the 2% allowance",
            o2.counters.instructions,
            o0.counters.instructions
        );
    }
    assert!(
        strictly_fewer >= 10,
        "only {strictly_fewer}/12 benchmarks shrank at O2"
    );
}

#[test]
fn text_layout_depends_on_level_but_data_does_not() {
    let bench = biaslab_workloads::benchmark_by_name("milc").expect("in suite");
    let harness = Harness::new(bench);
    let names = harness.object_names();
    let order: Vec<usize> = (0..names.len()).collect();
    let e2 = harness.executable(OptLevel::O2, &order, 0).unwrap();
    let e3 = harness.executable(OptLevel::O3, &order, 0).unwrap();
    assert_ne!(
        e2.text_size(),
        e3.text_size(),
        "levels produce different code"
    );
    let g2 = e2.symbol("lat_a").unwrap().addr;
    let g3 = e3.symbol("lat_a").unwrap().addr;
    assert_eq!(g2, g3, "data layout is level-independent");
}
