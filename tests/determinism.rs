//! Determinism guarantees: identical setups produce bit-identical
//! counters, and setup factors change timing without touching semantics.

use biaslab_core::harness::Harness;
use biaslab_core::setup::{ExperimentSetup, LinkOrder};
use biaslab_toolchain::load::Environment;
use biaslab_toolchain::OptLevel;
use biaslab_uarch::MachineConfig;
use biaslab_workloads::{benchmark_by_name, InputSize};

fn harness(name: &str) -> Harness {
    Harness::new(benchmark_by_name(name).expect("known benchmark"))
}

#[test]
fn identical_setups_give_identical_counters() {
    let h = harness("mcf");
    let setup = ExperimentSetup::default_on(MachineConfig::pentium4(), OptLevel::O3)
        .with_env(Environment::of_total_size(777))
        .with_link_order(LinkOrder::Random(42));
    let a = h.measure(&setup, InputSize::Test).unwrap();
    let b = h.measure(&setup, InputSize::Test).unwrap();
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.checksum, b.checksum);
}

#[test]
fn environment_changes_cycles_but_not_instructions_or_results() {
    let h = harness("perlbench");
    let base = ExperimentSetup::default_on(MachineConfig::o3cpu(), OptLevel::O2);
    let a = h.measure(&base, InputSize::Test).unwrap();
    let mut any_cycle_change = false;
    for bytes in [600u32, 1200, 1816, 2424] {
        let m = h
            .measure(
                &base.with_env(Environment::of_total_size(bytes)),
                InputSize::Test,
            )
            .unwrap();
        assert_eq!(m.checksum, a.checksum, "env must not change results");
        assert_eq!(
            m.counters.instructions, a.counters.instructions,
            "env must not change the instruction stream"
        );
        any_cycle_change |= m.counters.cycles != a.counters.cycles;
    }
    assert!(
        any_cycle_change,
        "the environment-size bias should be visible in cycles"
    );
}

#[test]
fn link_order_changes_cycles_but_not_instruction_count() {
    let h = harness("bzip2");
    let base = ExperimentSetup::default_on(MachineConfig::pentium4(), OptLevel::O2);
    let a = h.measure(&base, InputSize::Test).unwrap();
    let mut any_cycle_change = false;
    for seed in 0..6 {
        let m = h
            .measure(
                &base.with_link_order(LinkOrder::Random(seed)),
                InputSize::Test,
            )
            .unwrap();
        assert_eq!(m.checksum, a.checksum);
        assert_eq!(m.counters.instructions, a.counters.instructions);
        any_cycle_change |= m.counters.cycles != a.counters.cycles;
    }
    assert!(
        any_cycle_change,
        "the link-order bias should be visible in cycles"
    );
}

#[test]
fn loader_stack_shift_equals_equivalent_environment() {
    // The causal-analysis claim in miniature: an environment of size E and
    // a direct stack shift that produces the same initial sp give the same
    // cycle count.
    let h = harness("sphinx3");
    let base = ExperimentSetup::default_on(MachineConfig::core2(), OptLevel::O2);
    // Environment block of 488 bytes → sp drops by 496 versus the empty
    // env's 16 (both after 16-byte alignment): equivalent shift is 480.
    let env = h
        .measure(
            &base.with_env(Environment::of_total_size(488)),
            InputSize::Test,
        )
        .unwrap();
    let mut shifted = base.clone();
    shifted.stack_shift = 480;
    let shift = h.measure(&shifted, InputSize::Test).unwrap();
    assert_eq!(env.counters.cycles, shift.counters.cycles);
    assert_eq!(env.counters.bank_conflicts, shift.counters.bank_conflicts);
}

#[test]
fn orchestrated_sweep_is_counter_identical_to_serial_measurement() {
    // The orchestrator's parallel, cached sweep must be invisible in the
    // data: counter-for-counter identical to a serial `measure` loop.
    let orch = biaslab_core::Orchestrator::global();
    let shared = orch.harness("perlbench").expect("known benchmark");
    let serial = harness("perlbench");
    let base = ExperimentSetup::default_on(MachineConfig::core2(), OptLevel::O3);
    let setups: Vec<ExperimentSetup> = (0..6u32)
        .map(|i| {
            base.with_env(Environment::of_total_size(112 * i + 112))
                .with_link_order(LinkOrder::Random(u64::from(i)))
        })
        .collect();
    let swept = orch.sweep(&shared, &setups, InputSize::Test);
    // And a second pass, which must serve from the cache with the same data.
    let cached = orch.sweep(&shared, &setups, InputSize::Test);
    for ((setup, a), b) in setups.iter().zip(&swept).zip(&cached) {
        let reference = serial
            .measure(setup, InputSize::Test)
            .expect("serial measurement");
        let a = a.as_ref().expect("swept measurement");
        let b = b.as_ref().expect("cached measurement");
        assert_eq!(a.counters, reference.counters, "{}", setup.summary());
        assert_eq!(a.checksum, reference.checksum);
        assert_eq!(a.setup, reference.setup);
        assert_eq!(b.counters, reference.counters);
    }
}
