//! Differential test between the two kernel paths: the collapsed direct
//! dispatch (the fast path every recorded figure runs on) and the full
//! event-scheduled path must produce bit-identical [`Counters`] and
//! checksums for real benchmarks on every machine model.
//!
//! This is what licenses the collapse as a pure optimization: if a future
//! component makes a configuration multi-chain and Auto stops collapsing,
//! the numbers must not move.

use biaslab_core::harness::Harness;
use biaslab_toolchain::load::{Environment, Loader};
use biaslab_toolchain::OptLevel;
use biaslab_uarch::{KernelMode, Machine, MachineConfig, RunResult};
use biaslab_workloads::{suite, InputSize};

fn run_with(h: &Harness, machine: &MachineConfig, mode: KernelMode) -> RunResult {
    let order: Vec<usize> = (0..h.object_names().len()).collect();
    let exe = h
        .executable(OptLevel::O2, &order, 0)
        .unwrap_or_else(|e| panic!("{}: {e}", h.benchmark().name()));
    let process = Loader::new()
        .load(
            &exe,
            &Environment::new(),
            h.benchmark().args(InputSize::Test),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", h.benchmark().name()));
    let mut m = Machine::with_kernel(machine.clone(), mode);
    assert_eq!(m.effective_kernel(), mode, "mode must pin the path");
    m.run(&exe, process)
        .unwrap_or_else(|e| panic!("{}/{}: {e}", h.benchmark().name(), machine.name))
}

#[test]
fn event_kernel_reproduces_the_golden_subset_bit_for_bit() {
    // A golden subset (not the full 72-row sweep — the event path is the
    // slow one): every benchmark once, cycling through the machine models
    // so each model is exercised against several workloads.
    for (i, bench) in suite().into_iter().enumerate() {
        let h = Harness::new(bench);
        let machines = MachineConfig::all();
        let machine = &machines[i % machines.len()];
        let fast = run_with(&h, machine, KernelMode::Collapsed);
        let event = run_with(&h, machine, KernelMode::Event);
        assert_eq!(
            fast.counters,
            event.counters,
            "{}/{}: kernel paths disagree on counters",
            h.benchmark().name(),
            machine.name
        );
        assert_eq!(fast.checksum, event.checksum);
        assert_eq!(fast.return_value, event.return_value);
    }
}

#[test]
fn warm_repetition_state_carries_identically_on_both_paths() {
    // Machine state (caches, predictors, bank history) persists across
    // runs on the same instance; the event path must thread it through the
    // scheduler without perturbing the warm-run counters either.
    let bench = suite().into_iter().next().expect("non-empty suite");
    let h = Harness::new(bench);
    let order: Vec<usize> = (0..h.object_names().len()).collect();
    let exe = h.executable(OptLevel::O2, &order, 0).expect("links");
    let reps = 3;
    let mut per_mode = Vec::new();
    for mode in [KernelMode::Collapsed, KernelMode::Event] {
        let mut m = Machine::with_kernel(MachineConfig::o3cpu(), mode);
        let mut runs = Vec::new();
        for _ in 0..reps {
            let process = Loader::new()
                .load(
                    &exe,
                    &Environment::new(),
                    h.benchmark().args(InputSize::Test),
                )
                .expect("loads");
            runs.push(m.run(&exe, process).expect("runs"));
        }
        per_mode.push(runs);
    }
    assert_eq!(per_mode[0], per_mode[1], "warm repetitions diverged");
    assert!(
        per_mode[0][1].counters.cycles <= per_mode[0][0].counters.cycles,
        "second repetition should not be colder than the first"
    );
}
