//! Golden-counter regression test: every benchmark, at O2 and O3, on all
//! three machine models, must reproduce the exact `Counters` struct checked
//! in under `tests/golden/counters.tsv`.
//!
//! The simulator's figures rest on the invariant that a given setup always
//! produces bit-identical counters; any "optimization" of the execution
//! engine that perturbs timing semantics — a reordered penalty, a
//! miscomputed stall, a cache indexed differently — fails this test loudly
//! rather than silently moving every figure.
//!
//! To regenerate after an *intentional* timing-model change:
//!
//! ```text
//! BIASLAB_BLESS=1 cargo test --test golden_counters
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use biaslab_core::harness::Harness;
use biaslab_core::setup::ExperimentSetup;
use biaslab_toolchain::OptLevel;
use biaslab_uarch::{Counters, MachineConfig};
use biaslab_workloads::{suite, InputSize};

/// Every `Counters` field, in declaration order.
fn counter_fields(c: &Counters) -> [u64; 22] {
    [
        c.cycles,
        c.instructions,
        c.fetches,
        c.l1i_misses,
        c.l1d_accesses,
        c.l1d_misses,
        c.l2_misses,
        c.itlb_misses,
        c.dtlb_misses,
        c.branches,
        c.mispredicts,
        c.btb_misses,
        c.ras_mispredicts,
        c.bank_conflicts,
        c.line_splits,
        c.page_splits,
        c.loads,
        c.stores,
        c.stall_frontend,
        c.stall_memory,
        c.stall_branch,
        c.stall_compute,
    ]
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/counters.tsv")
}

#[test]
fn counters_match_golden_values() {
    let mut actual = String::new();
    for bench in suite() {
        let h = Harness::new(bench);
        for machine in MachineConfig::all() {
            for opt in [OptLevel::O2, OptLevel::O3] {
                let setup = ExperimentSetup::default_on(machine.clone(), opt);
                let m = h.measure(&setup, InputSize::Test).unwrap_or_else(|e| {
                    panic!("{}/{}/{opt}: {e}", h.benchmark().name(), machine.name)
                });
                let fields = counter_fields(&m.counters).map(|v| v.to_string()).join(",");
                writeln!(
                    actual,
                    "{}\t{}\t{opt}\t{}",
                    h.benchmark().name(),
                    machine.name,
                    fields
                )
                .expect("write to String");
            }
        }
    }

    let path = golden_path();
    if std::env::var_os("BIASLAB_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("has parent")).expect("mkdir");
        std::fs::write(&path, &actual).expect("write golden file");
        eprintln!(
            "blessed {} ({} entries)",
            path.display(),
            actual.lines().count()
        );
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run `BIASLAB_BLESS=1 cargo test --test golden_counters` \
             to create it",
            path.display()
        )
    });
    // Line-by-line first, so a drift names the exact setup that moved.
    for (want, got) in expected.lines().zip(actual.lines()) {
        assert_eq!(
            got, want,
            "counters drifted — timing semantics changed; if intentional, re-bless with \
             BIASLAB_BLESS=1"
        );
    }
    assert_eq!(actual, expected, "entry count changed");
}
