//! The biaslint contract, pinned at the workspace level.
//!
//! Linting is static: it reads the IR, the linked-image grid, and the
//! stack-layout facts, but it never *runs* anything. This gate brackets
//! a full-suite lint on every machine model with the orchestrator's
//! simulation counter and requires the delta to be zero — the same
//! discipline `tests/static_vs_dynamic.rs` applies to the bias ranking.
//! It also re-validates every machine-readable finding line against the
//! published schema, so downstream consumers (ci.sh, `--json` users)
//! can parse the stream without defensive code.

use biaslab_analyze::{lint_suite, lint_suite_jsonl, validate_lint_line, FindingClass};
use biaslab_core::Orchestrator;
use biaslab_uarch::MachineConfig;

fn machines() -> [MachineConfig; 3] {
    [
        MachineConfig::core2(),
        MachineConfig::pentium4(),
        MachineConfig::o3cpu(),
    ]
}

#[test]
fn lint_runs_zero_simulations() {
    let orch = Orchestrator::global();
    let before = orch.stats().simulated;
    for machine in machines() {
        let reports = lint_suite(&machine).expect("suite lints");
        assert!(
            !reports.is_empty(),
            "lint_suite returned no reports on {}",
            machine.name
        );
    }
    let after = orch.stats().simulated;
    assert_eq!(
        before, after,
        "lint is a static analysis; it must not trigger simulation"
    );
}

#[test]
fn lint_jsonl_is_schema_clean_and_classes_are_known() {
    for machine in machines() {
        let stream = lint_suite_jsonl(&machine).expect("suite lints");
        let mut findings = 0usize;
        for line in stream.lines() {
            validate_lint_line(line)
                .unwrap_or_else(|e| panic!("bad lint line on {}: {e}\n{line}", machine.name));
            if line.contains("\"ev\":\"finding\"") {
                findings += 1;
                assert!(
                    FindingClass::ALL
                        .iter()
                        .any(|c| line.contains(&format!("\"class\":\"{}\"", c.name()))),
                    "finding line names an unknown class on {}: {line}",
                    machine.name
                );
            }
        }
        assert!(
            findings > 0,
            "the suite should surface at least one layout hazard on {}",
            machine.name
        );
    }
}
