//! Telemetry integration tests: the properties `--trace` promises.
//!
//! 1. **Bit-identity** — tracing a measurement never changes it: a
//!    golden-counters subset measured with telemetry on is byte-identical
//!    to the same subset measured with telemetry off.
//! 2. **Schema stability** — the trace JSONL schema (field names and
//!    `TRACE_VERSION`) is pinned by a golden snapshot, so accidental
//!    drift fails loudly. Re-bless with
//!    `BIASLAB_BLESS=1 cargo test --test telemetry`.
//! 3. **Accounting** — every cache hit, miss and eviction counted by
//!    [`biaslab_core::orchestrator::OrchestratorStats`] has a matching
//!    cache event in the trace, and vice versa.
//! 4. **Single-flight** — concurrent `measure` calls for one key produce
//!    exactly one simulation and N−1 cache hits, observable both in the
//!    stats and in the trace events.
//!
//! Telemetry state (the enable flag, the event sink) is process-global,
//! so every test that toggles it serializes on [`telemetry_lock`].

use std::path::PathBuf;
use std::sync::{Barrier, Mutex, MutexGuard, OnceLock};

use biaslab_core::harness::Harness;
use biaslab_core::orchestrator::MeasureKey;
use biaslab_core::setup::ExperimentSetup;
use biaslab_core::telemetry::{self, CacheOutcome, TraceEvent};
use biaslab_core::Orchestrator;
use biaslab_toolchain::load::Environment;
use biaslab_toolchain::OptLevel;
use biaslab_uarch::{Counters, MachineConfig};
use biaslab_workloads::{benchmark_by_name, suite, InputSize};

fn telemetry_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Holds the telemetry lock with tracing enabled; disables tracing and
/// empties the sink again on drop, whatever the test outcome.
struct Traced(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for Traced {
    fn drop(&mut self) {
        telemetry::disable();
        let _ = telemetry::drain();
    }
}

fn traced() -> Traced {
    let guard = telemetry_lock().lock().unwrap_or_else(|e| e.into_inner());
    let _ = telemetry::drain();
    telemetry::enable();
    Traced(guard)
}

/// A canonical byte rendering of one measurement, for identity checks.
fn render(bench: &str, opt: OptLevel, counters: &Counters, checksum: u64) -> String {
    format!("{bench}\t{opt}\t{checksum:#x}\n{counters}\n")
}

#[test]
fn tracing_never_changes_measurements() {
    // A golden-counters subset: three benchmarks at two opt levels. Run it
    // twice from fresh harnesses — telemetry off, then on — and require
    // the rendered measurements to be byte-identical.
    let names: Vec<&str> = suite().iter().take(3).map(|b| b.name()).collect();
    let machine = MachineConfig::core2();
    let measure_all = || -> String {
        let mut out = String::new();
        for name in &names {
            let h = Harness::new(benchmark_by_name(name).expect("known benchmark"));
            for opt in [OptLevel::O2, OptLevel::O3] {
                let setup = ExperimentSetup::default_on(machine.clone(), opt);
                let m = h.measure(&setup, InputSize::Test).expect("measures");
                out.push_str(&render(name, opt, &m.counters, m.checksum));
            }
        }
        out
    };

    let guard = telemetry_lock().lock().unwrap_or_else(|e| e.into_inner());
    telemetry::disable();
    let _ = telemetry::drain();
    let untraced = measure_all();
    drop(guard);

    let guard = traced();
    let traced_out = measure_all();
    let events = telemetry::drain();
    drop(guard);

    assert_eq!(
        untraced, traced_out,
        "telemetry must not perturb measurements"
    );
    // And the traced pass must actually have recorded its work.
    let spans = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Span(s) if s.name == "measure"))
        .count();
    assert_eq!(spans, names.len() * 2, "one measure span per measurement");
}

#[test]
fn trace_schema_is_pinned_by_golden_snapshot() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/trace_schema.txt");
    let actual = telemetry::schema();
    if std::env::var_os("BIASLAB_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("has parent")).expect("mkdir");
        std::fs::write(&path, &actual).expect("write golden schema");
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run `BIASLAB_BLESS=1 cargo test --test telemetry` to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "trace schema drifted — consumers parse these exact field names; \
         bump TRACE_VERSION and re-bless only for an intentional format change"
    );
}

/// Counts the drained cache events by outcome.
fn cache_counts(events: &[TraceEvent]) -> (u64, u64, u64) {
    let mut hits = 0;
    let mut misses = 0;
    let mut evictions = 0;
    for e in events {
        if let TraceEvent::Cache(c) = e {
            match c.outcome {
                CacheOutcome::Hit => hits += 1,
                CacheOutcome::Miss => misses += 1,
                CacheOutcome::Evict => evictions += 1,
            }
        }
    }
    (hits, misses, evictions)
}

#[test]
fn every_stats_increment_has_a_matching_trace_event() {
    let guard = traced();
    let orch = Orchestrator::new();
    let h = orch.harness("hmmer").expect("known benchmark");
    let base = ExperimentSetup::default_on(MachineConfig::core2(), OptLevel::O2);
    let setups: Vec<_> = (0..4)
        .map(|i| base.with_env(Environment::of_total_size(64 * i + 64)))
        .collect();

    // 4 distinct misses; a cap of 2 forces 2 evictions along the way …
    orch.set_cache_cap(Some(2));
    for setup in &setups {
        orch.measure(&h, setup, InputSize::Test).expect("measures");
    }
    // … and the newest two are still cached: one hit, one more eviction
    // cycle never happens.
    orch.measure(&h, &setups[3], InputSize::Test)
        .expect("measures");

    let stats = orch.stats();
    let events = telemetry::drain();
    drop(guard);

    assert_eq!(stats.misses, 4);
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.evictions, 2);

    let (hits, misses, evictions) = cache_counts(&events);
    assert_eq!(hits, stats.hits, "hit events must match hit stats");
    assert_eq!(misses, stats.misses, "miss events must match miss stats");
    assert_eq!(
        evictions, stats.evictions,
        "evict events must match eviction stats"
    );
}

#[test]
fn exported_traces_are_schema_valid_end_to_end() {
    let guard = traced();
    let orch = Orchestrator::new();
    let h = orch.harness("gobmk").expect("known benchmark");
    let setup = ExperimentSetup::default_on(MachineConfig::core2(), OptLevel::O2);
    orch.measure(&h, &setup, InputSize::Test).expect("measures");
    orch.measure(&h, &setup, InputSize::Test).expect("measures");

    let dir = std::env::temp_dir().join(format!("biaslab-trace-export-{}", std::process::id()));
    let path = dir.join("trace.jsonl");
    let written = telemetry::export(&path, "integration test", &orch.metrics()).expect("exports");
    drop(guard);

    let text = std::fs::read_to_string(&path).expect("trace file exists");
    std::fs::remove_dir_all(&dir).ok();
    let lines: Vec<&str> = text.lines().collect();
    // Header, the events, one closing metrics snapshot.
    assert_eq!(lines.len(), written + 2);
    for line in &lines {
        telemetry::validate_line(line).unwrap_or_else(|e| panic!("{e}: {line}"));
        assert!(
            telemetry::parse_line(line).is_some(),
            "validated line must also parse: {line}"
        );
    }
    assert!(matches!(
        telemetry::parse_line(lines[0]),
        Some(telemetry::TraceLine::Start { .. })
    ));
    let Some(telemetry::TraceLine::Metrics(counters)) =
        telemetry::parse_line(lines.last().expect("nonempty"))
    else {
        panic!("last line must be the metrics snapshot")
    };
    // The orchestrator's stats ride along in the metrics record.
    let get = |name: &str| counters.iter().find(|(k, _)| k == name).map(|&(_, v)| v);
    assert_eq!(get("orch.misses"), Some(1));
    assert_eq!(get("orch.hits"), Some(1));
    assert_eq!(get("orch.simulated"), Some(1));
}

#[test]
fn concurrent_measures_of_one_key_simulate_once() {
    const THREADS: usize = 4;
    let guard = traced();
    let orch = Orchestrator::new();
    let h = orch.harness("milc").expect("known benchmark");
    let setup = ExperimentSetup::default_on(MachineConfig::core2(), OptLevel::O2);
    let key = MeasureKey::new("milc", &setup, InputSize::Test).digest();

    let barrier = Barrier::new(THREADS);
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                barrier.wait();
                orch.measure(&h, &setup, InputSize::Test).expect("measures");
            });
        }
    });

    let stats = orch.stats();
    let events = telemetry::drain();
    drop(guard);

    // Single-flight: one leader simulates, the rest wait and count as hits.
    assert_eq!(stats.simulated, 1, "exactly one simulation");
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, THREADS as u64 - 1);

    // The same story must be reconstructible from the trace alone.
    let (hits, misses, _) = cache_counts(&events);
    assert_eq!(misses, 1);
    assert_eq!(hits, THREADS as u64 - 1);
    let measure_spans: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Span(s) if s.name == "measure" && s.key == key => Some(s),
            _ => None,
        })
        .collect();
    assert_eq!(
        measure_spans.len(),
        THREADS,
        "every requester records a measure span for the key"
    );
    let miss_spans = measure_spans
        .iter()
        .filter(|s| s.outcome == Some(CacheOutcome::Miss))
        .count();
    assert_eq!(miss_spans, 1, "exactly one span carries the miss outcome");
    assert!(measure_spans
        .iter()
        .all(|s| s.outcome == Some(CacheOutcome::Hit) || s.outcome == Some(CacheOutcome::Miss)));
}
