//! Validation of the static bias analyzer against the simulator.
//!
//! The analyzer ranks benchmarks by how far their measured O3/O2 speedup
//! should move when the experimental setup (environment size, link
//! order) varies. This test measures that spread for real — a grid of
//! setups per benchmark, at both optimization levels, on every machine
//! model — and requires the static ranking to correlate positively
//! (Spearman) with the measured one. It also pins the analyzer's core
//! contract: producing the ranking itself runs **zero** simulations.

use biaslab_analyze::rank_suite;
use biaslab_core::setup::LinkOrder;
use biaslab_core::stats::spearman;
use biaslab_core::Orchestrator;
use biaslab_toolchain::load::Environment;
use biaslab_toolchain::OptLevel;
use biaslab_uarch::MachineConfig;
use biaslab_workloads::InputSize;

/// The setup grid the "careless experimenter" wanders over: a few
/// environment sizes crossed with two link orders. Small enough to stay
/// debug-build friendly, wide enough to excite the paper's bias
/// mechanisms.
const ENV_SIZES: [u32; 4] = [0, 528, 1056, 1584];
const ORDERS: [LinkOrder; 2] = [LinkOrder::Default, LinkOrder::Reversed];

/// Measured sensitivity of one benchmark: the range of the O3/O2 cycle
/// ratio across the setup grid.
fn measured_spread(orch: &Orchestrator, bench: &str, machine: &MachineConfig) -> f64 {
    let harness = orch.harness(bench).expect("known benchmark");
    let mut setups = Vec::new();
    for opt in [OptLevel::O2, OptLevel::O3] {
        for env in ENV_SIZES {
            for order in ORDERS {
                let mut s = biaslab_core::ExperimentSetup::default_on(machine.clone(), opt);
                s.link_order = order;
                if env > 0 {
                    s.env = Environment::of_total_size(env);
                }
                setups.push(s);
            }
        }
    }
    let results = orch.sweep(&harness, &setups, InputSize::Test);
    let cycles: Vec<f64> = results
        .iter()
        .map(|r| r.as_ref().expect("measurable").counters.cycles as f64)
        .collect();
    let per_level = setups.len() / 2;
    let speedups: Vec<f64> = (0..per_level)
        .map(|i| cycles[i] / cycles[per_level + i])
        .collect();
    let lo = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = speedups.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    hi - lo
}

#[test]
fn static_ranking_correlates_with_measured_spread() {
    let orch = Orchestrator::global();
    for machine in MachineConfig::all() {
        // The static side first, bracketed by simulation counters: the
        // analyzer must not execute a single instruction.
        let before = orch.stats().simulated;
        let ranking = rank_suite(&machine).expect("whole suite analyzes");
        assert_eq!(
            orch.stats().simulated,
            before,
            "static analysis must run zero simulations"
        );
        assert!(ranking.len() >= 8, "whole suite ranked");

        let (static_scores, measured): (Vec<f64>, Vec<f64>) = ranking
            .iter()
            .map(|r| {
                (
                    r.predicted_spread,
                    measured_spread(orch, &r.bench, &machine),
                )
            })
            .unzip();
        let rho = spearman(&static_scores, &measured);
        eprintln!("{}: spearman(static, measured) = {rho:.3}", machine.name);
        assert!(
            rho > 0.0,
            "static ranking must positively correlate with measured O3/O2 spread \
             on {} (got rho = {rho:.3})",
            machine.name
        );
    }
}
