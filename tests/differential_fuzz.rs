//! Differential fuzzing of the whole toolchain: generate random (but
//! well-formed, always-terminating) IR programs, then check that every
//! optimization level, compiled and simulated, reproduces the reference
//! interpreter's checksum and return value exactly.
//!
//! This is the test that makes the bias experiments trustworthy: if any
//! pass, the code generator, the linker, the loader or the machine model
//! disagreed semantically with the IR, measurements would be comparing
//! different computations.

use biaslab_isa::{AluOp, Cond, Width};
use biaslab_toolchain::codegen::compile;
use biaslab_toolchain::interp::Interpreter;
use biaslab_toolchain::ir::Global;
use biaslab_toolchain::link::Linker;
use biaslab_toolchain::load::{Environment, Loader};
use biaslab_toolchain::opt::{optimize, OptLevel};
use biaslab_toolchain::{FunctionBuilder, Module, ModuleBuilder};
use biaslab_uarch::{Machine, MachineConfig};
use proptest::prelude::*;

/// A generated expression over the function's scalar locals.
#[derive(Debug, Clone)]
enum Expr {
    Const(u64),
    Local(usize),
    Bin(AluOp, Box<Expr>, Box<Expr>),
    BinImm(AluOp, Box<Expr>, i64),
    /// Read 8 bytes from the shared global buffer at `(index % 64) * 8`.
    GlobalLoad(Box<Expr>),
    /// Read 8 bytes from the function's stack buffer at `(index % 16) * 8`.
    BufferLoad(Box<Expr>),
}

/// A generated statement.
#[derive(Debug, Clone)]
enum Stmt {
    Assign(usize, Expr),
    GlobalStore(Expr, Expr),
    BufferStore(Expr, Expr),
    Chk(Expr),
    If(Cond, Expr, Expr, Vec<Stmt>, Vec<Stmt>),
    /// Counted loop with a constant trip count and single-block-ish body.
    Loop(u8, Vec<Stmt>),
    /// Call the helper function with one argument, assigning the result.
    CallHelper(usize, Expr),
}

const N_LOCALS: usize = 4;

fn arb_op() -> impl Strategy<Value = AluOp> {
    // Skip nothing: every ALU op is total.
    (0usize..AluOp::ALL.len()).prop_map(|i| AluOp::ALL[i])
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    (0usize..Cond::ALL.len()).prop_map(|i| Cond::ALL[i])
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<u64>().prop_map(Expr::Const),
        (0..N_LOCALS).prop_map(Expr::Local),
    ];
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            (arb_op(), inner.clone(), inner.clone()).prop_map(|(op, a, b)| Expr::Bin(
                op,
                Box::new(a),
                Box::new(b)
            )),
            (arb_op(), inner.clone(), any::<i32>()).prop_map(|(op, a, imm)| Expr::BinImm(
                op,
                Box::new(a),
                i64::from(imm)
            )),
            inner.clone().prop_map(|e| Expr::GlobalLoad(Box::new(e))),
            inner.prop_map(|e| Expr::BufferLoad(Box::new(e))),
        ]
    })
}

fn arb_simple_stmt() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        ((0..N_LOCALS), arb_expr()).prop_map(|(l, e)| Stmt::Assign(l, e)),
        (arb_expr(), arb_expr()).prop_map(|(i, v)| Stmt::GlobalStore(i, v)),
        (arb_expr(), arb_expr()).prop_map(|(i, v)| Stmt::BufferStore(i, v)),
        arb_expr().prop_map(Stmt::Chk),
        ((0..N_LOCALS), arb_expr()).prop_map(|(l, e)| Stmt::CallHelper(l, e)),
    ]
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        4 => arb_simple_stmt(),
        1 => (
            arb_cond(),
            arb_expr(),
            arb_expr(),
            proptest::collection::vec(arb_simple_stmt(), 0..3),
            proptest::collection::vec(arb_simple_stmt(), 0..3),
        )
            .prop_map(|(c, a, b, t, e)| Stmt::If(c, a, b, t, e)),
        1 => (1u8..6, proptest::collection::vec(arb_simple_stmt(), 1..4))
            .prop_map(|(n, body)| Stmt::Loop(n, body)),
    ]
}

fn arb_program() -> impl Strategy<Value = (Vec<Stmt>, Vec<Stmt>)> {
    (
        proptest::collection::vec(arb_stmt(), 1..8),
        proptest::collection::vec(arb_simple_stmt(), 1..5),
    )
}

/// Emits an expression in the current block, returning its value.
fn emit_expr(
    fb: &mut FunctionBuilder<'_>,
    locals: &[biaslab_toolchain::ir::LocalId],
    buffer: biaslab_toolchain::ir::LocalId,
    global: biaslab_toolchain::ir::GlobalId,
    expr: &Expr,
) -> biaslab_toolchain::ir::Val {
    match expr {
        Expr::Const(v) => fb.const_(*v),
        Expr::Local(i) => fb.get(locals[*i]),
        Expr::Bin(op, a, b) => {
            let av = emit_expr(fb, locals, buffer, global, a);
            let bv = emit_expr(fb, locals, buffer, global, b);
            fb.bin(*op, av, bv)
        }
        Expr::BinImm(op, a, imm) => {
            let av = emit_expr(fb, locals, buffer, global, a);
            fb.bin_imm(*op, av, *imm)
        }
        Expr::GlobalLoad(idx) => {
            let iv = emit_expr(fb, locals, buffer, global, idx);
            let masked = fb.bin_imm(AluOp::And, iv, 63);
            let off = fb.mul_imm(masked, 8);
            let base = fb.addr_global(global);
            let addr = fb.add(base, off);
            fb.load(Width::B8, addr, 0)
        }
        Expr::BufferLoad(idx) => {
            let iv = emit_expr(fb, locals, buffer, global, idx);
            let masked = fb.bin_imm(AluOp::And, iv, 15);
            let off = fb.mul_imm(masked, 8);
            let base = fb.addr(buffer);
            let addr = fb.add(base, off);
            fb.load(Width::B8, addr, 0)
        }
    }
}

fn emit_stmts(
    fb: &mut FunctionBuilder<'_>,
    locals: &[biaslab_toolchain::ir::LocalId],
    buffer: biaslab_toolchain::ir::LocalId,
    global: biaslab_toolchain::ir::GlobalId,
    helper: Option<biaslab_toolchain::ir::FuncId>,
    stmts: &[Stmt],
) {
    for stmt in stmts {
        match stmt {
            Stmt::Assign(l, e) => {
                let v = emit_expr(fb, locals, buffer, global, e);
                fb.set(locals[*l], v);
            }
            Stmt::GlobalStore(i, v) => {
                let iv = emit_expr(fb, locals, buffer, global, i);
                let masked = fb.bin_imm(AluOp::And, iv, 63);
                let off = fb.mul_imm(masked, 8);
                let base = fb.addr_global(global);
                let addr = fb.add(base, off);
                let vv = emit_expr(fb, locals, buffer, global, v);
                fb.store(Width::B8, addr, 0, vv);
            }
            Stmt::BufferStore(i, v) => {
                let iv = emit_expr(fb, locals, buffer, global, i);
                let masked = fb.bin_imm(AluOp::And, iv, 15);
                let off = fb.mul_imm(masked, 8);
                let base = fb.addr(buffer);
                let addr = fb.add(base, off);
                let vv = emit_expr(fb, locals, buffer, global, v);
                fb.store(Width::B8, addr, 0, vv);
            }
            Stmt::Chk(e) => {
                let v = emit_expr(fb, locals, buffer, global, e);
                fb.chk(v);
            }
            Stmt::If(c, a, b, then_s, else_s) => {
                let av = emit_expr(fb, locals, buffer, global, a);
                let bv = emit_expr(fb, locals, buffer, global, b);
                fb.if_then_else(
                    *c,
                    av,
                    bv,
                    |fb| emit_stmts(fb, locals, buffer, global, helper, then_s),
                    |fb| emit_stmts(fb, locals, buffer, global, helper, else_s),
                );
            }
            Stmt::Loop(n, body) => {
                let i = fb.local_scalar();
                let bound = fb.local_scalar();
                let nb = fb.const_(u64::from(*n));
                fb.set(bound, nb);
                fb.counted_loop(i, 0, bound, 1, |fb, _iv| {
                    emit_stmts(fb, locals, buffer, global, helper, body);
                });
            }
            Stmt::CallHelper(l, e) => {
                let v = emit_expr(fb, locals, buffer, global, e);
                if let Some(h) = helper {
                    let r = fb.call(h, &[v]);
                    fb.set(locals[*l], r);
                } else {
                    // Inside the helper itself: fold the value instead.
                    fb.set(locals[*l], v);
                }
            }
        }
    }
}

fn build_program(main_stmts: &[Stmt], helper_stmts: &[Stmt]) -> Module {
    let mut mb = ModuleBuilder::new();
    let global = mb.global(Global::from_words(
        "shared",
        &(0..64u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect::<Vec<_>>(),
    ));
    let helper = mb.function("helper", 1, true, |fb| {
        let locals: Vec<_> = (0..N_LOCALS).map(|_| fb.local_scalar()).collect();
        let p = fb.param(0);
        let pv = fb.get(p);
        // Initialize every local: reading an uninitialized slot is
        // unspecified (see biaslab_toolchain::ir docs), so generated
        // programs must be fully defined.
        fb.set(locals[0], pv);
        for (k, &l) in locals.iter().enumerate().skip(1) {
            let v = fb.const_((k as u64).wrapping_mul(0x5851_F42D_4C95_7F2D));
            fb.set(l, v);
        }
        let buffer = fb.local_buffer(128);
        let base = fb.addr(buffer);
        // Deterministically initialize the stack buffer.
        for k in 0..16 {
            let v = fb.const_((k as u64).wrapping_mul(0xABCD_EF01));
            fb.store(Width::B8, base, k * 8, v);
        }
        emit_stmts(fb, &locals, buffer, global, None, helper_stmts);
        let r = fb.get(locals[0]);
        fb.ret(Some(r));
    });
    mb.function("main", 1, true, |fb| {
        let locals: Vec<_> = (0..N_LOCALS).map(|_| fb.local_scalar()).collect();
        let p = fb.param(0);
        let pv = fb.get(p);
        fb.set(locals[0], pv);
        let one = fb.const_(1);
        fb.set(locals[1], one);
        for (k, &l) in locals.iter().enumerate().skip(2) {
            let v = fb.const_((k as u64).wrapping_mul(0xD129_0B26_3911_87BB));
            fb.set(l, v);
        }
        let buffer = fb.local_buffer(128);
        let base = fb.addr(buffer);
        for k in 0..16 {
            let v = fb.const_((k as u64).wrapping_mul(0x1234_5678_9ABC));
            fb.store(Width::B8, base, k * 8, v);
        }
        emit_stmts(fb, &locals, buffer, global, Some(helper), main_stmts);
        // Make every local observable.
        for &l in &locals {
            let v = fb.get(l);
            fb.chk(v);
        }
        let r = fb.get(locals[0]);
        fb.ret(Some(r));
    });
    mb.finish().expect("generated module is well-formed")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn compiled_code_matches_the_interpreter((main_s, helper_s) in arb_program()) {
        let module = build_program(&main_s, &helper_s);
        let mut interp = Interpreter::new(&module);
        let expected = interp.call_by_name("main", &[7]).expect("reference runs");

        for level in OptLevel::ALL {
            let cm = compile(&optimize(&module, level), level);
            let exe = Linker::new().link(&cm, "main").expect("links");
            let process = Loader::new()
                .load(&exe, &Environment::of_total_size(64), &[7])
                .expect("loads");
            let result = Machine::new(MachineConfig::core2())
                .run(&exe, process)
                .expect("runs to halt");
            prop_assert_eq!(
                result.checksum,
                expected.checksum,
                "checksum diverged at {} for program {:?} / {:?}",
                level,
                main_s,
                helper_s
            );
            prop_assert_eq!(result.return_value, expected.return_value.unwrap_or(0));
        }
    }

    #[test]
    fn optimization_is_idempotent_on_generated_programs((main_s, helper_s) in arb_program()) {
        let module = build_program(&main_s, &helper_s);
        let once = optimize(&module, OptLevel::O2);
        let twice = optimize(&once, OptLevel::O2);
        let mut i1 = Interpreter::new(&once);
        let mut i2 = Interpreter::new(&twice);
        let a = i1.call_by_name("main", &[3]).expect("runs");
        let b = i2.call_by_name("main", &[3]).expect("runs");
        prop_assert_eq!(a.checksum, b.checksum);
        prop_assert_eq!(a.return_value, b.return_value);
    }
}

/// The shrunk failure case persisted in `differential_fuzz.proptest-regressions`,
/// pinned as a deterministic test. It stresses shift amounts far above 63
/// (`Srl` by 14183447834374820825, `Sra` by 7184846453245133485, `Sll` of a
/// local by itself) combined with `Rem` by an arbitrary local — exactly where
/// codegen, interpreter and simulator could disagree about shift-amount
/// masking and division semantics. Re-run here on every test invocation so
/// the case keeps protecting the differential property even though the
/// in-tree proptest runner cannot replay upstream persistence seeds.
#[test]
fn persisted_regression_oversized_shifts_and_rem() {
    use AluOp::{Add, Mul, Or, Rem, Seq, Sll, Sltu, Sra, Srl};
    use Expr::{BufferLoad, Const, GlobalLoad, Local};

    fn bin(op: AluOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }
    fn bin_imm(op: AluOp, a: Expr, imm: i64) -> Expr {
        Expr::BinImm(op, Box::new(a), imm)
    }
    fn gload(e: Expr) -> Expr {
        GlobalLoad(Box::new(e))
    }

    let main_s = vec![Stmt::Loop(
        4,
        vec![
            Stmt::CallHelper(
                2,
                BufferLoad(Box::new(bin(Add, Const(0), Const(561_642_148_961_857)))),
            ),
            Stmt::GlobalStore(
                bin(
                    Srl,
                    bin(Rem, Const(15_559_282_242_201_632_897), Local(1)),
                    Const(14_183_447_834_374_820_825),
                ),
                bin_imm(Or, Local(0), -1_560_769_220),
            ),
        ],
    )];
    let helper_s = vec![
        Stmt::GlobalStore(
            bin(
                Rem,
                bin(Sra, Local(2), Const(7_184_846_453_245_133_485)),
                bin_imm(Mul, Local(2), -1_475_204_456),
            ),
            bin(
                Sltu,
                Const(9_670_513_826_353_932_834),
                bin_imm(Seq, gload(Local(0)), -1_771_842_522),
            ),
        ),
        Stmt::Chk(gload(Local(1))),
        Stmt::Assign(2, Const(15_980_160_137_135_460_660)),
        Stmt::Chk(bin(Sll, Local(0), Local(0))),
    ];

    let module = build_program(&main_s, &helper_s);
    let mut interp = Interpreter::new(&module);
    let expected = interp.call_by_name("main", &[7]).expect("reference runs");

    for level in OptLevel::ALL {
        let cm = compile(&optimize(&module, level), level);
        let exe = Linker::new().link(&cm, "main").expect("links");
        let process = Loader::new()
            .load(&exe, &Environment::of_total_size(64), &[7])
            .expect("loads");
        let result = Machine::new(MachineConfig::core2())
            .run(&exe, process)
            .expect("runs to halt");
        assert_eq!(
            result.checksum, expected.checksum,
            "checksum diverged at {level}"
        );
        assert_eq!(result.return_value, expected.return_value.unwrap_or(0));
    }
}
