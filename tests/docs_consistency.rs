//! Documentation ↔ code consistency: the experiment registry, the design
//! document and the experiments log must agree about what exists, so a
//! reader can navigate from any of them to the others.

use biaslab_bench::EXPERIMENTS;

fn read(path: &str) -> String {
    let root = env!("CARGO_MANIFEST_DIR");
    std::fs::read_to_string(format!("{root}/{path}")).unwrap_or_else(|e| panic!("{path}: {e}"))
}

#[test]
fn every_experiment_id_is_documented() {
    let design = read("DESIGN.md");
    let experiments = read("EXPERIMENTS.md");
    for e in EXPERIMENTS {
        assert!(
            design.contains(e.id),
            "DESIGN.md does not mention experiment `{}`",
            e.id
        );
        assert!(
            experiments.contains(e.id),
            "EXPERIMENTS.md does not mention experiment `{}`",
            e.id
        );
    }
}

#[test]
fn readme_points_at_the_entry_points() {
    let readme = read("README.md");
    for needle in [
        "cargo test --workspace --release",
        "repro -- fig3",
        "EXPERIMENTS.md",
        "DESIGN.md",
        "wrong_data",
        "quickstart",
    ] {
        assert!(readme.contains(needle), "README.md lacks `{needle}`");
    }
}

#[test]
fn design_documents_every_substitution_marker() {
    let design = read("DESIGN.md");
    // The substitution table must name what the paper used and what we
    // built for each substituted system.
    for needle in [
        "Pentium 4, Core 2",
        "SPEC CPU2006",
        "biaslab-uarch",
        "biaslab-toolchain",
        "biaslab-workloads",
        "133",
    ] {
        assert!(design.contains(needle), "DESIGN.md lacks `{needle}`");
    }
}

#[test]
fn every_suite_benchmark_appears_in_design() {
    let design = read("DESIGN.md");
    for b in biaslab_workloads::suite() {
        assert!(
            design.contains(b.name()),
            "DESIGN.md does not mention benchmark `{}`",
            b.name()
        );
    }
}
