//! Crash-recovery battery for sweep journals: a daemon killed mid-sweep
//! (the `serve.crash_before_journal_fsync` fault tears the journal and
//! panics the worker) resumes on restart from the write-ahead journal,
//! re-simulating nothing it already journaled and converging to the exact
//! bytes a never-crashed sweep produces.
//!
//! Fault state is process-global, so the test holds the
//! [`faults::scoped`] guard for its whole body.

use std::sync::Arc;

use biaslab_core::faults::{self, FaultSpec};
use biaslab_core::serve::{
    self, encode_sweep, encode_sweep_done, encode_sweep_item, sweep_digest, sweep_setups,
    validate_response_line, Addr, Client, MeasureSpec, Server, ServerConfig,
};
use biaslab_core::setup::LinkOrder;
use biaslab_core::{telemetry, Orchestrator};
use biaslab_toolchain::OptLevel;
use biaslab_workloads::InputSize;

fn spec(s: &str) -> FaultSpec {
    FaultSpec::parse(s).expect("test specs parse")
}

fn temp_sock(tag: &str) -> Addr {
    let dir = std::env::temp_dir();
    Addr::Unix(dir.join(format!("biaslab-scrash-{tag}-{}.sock", std::process::id())))
}

fn sweep_spec() -> MeasureSpec {
    MeasureSpec {
        bench: "hmmer".to_owned(),
        machine: "core2".to_owned(),
        opt: OptLevel::O2,
        order: LinkOrder::Default,
        text_offset: 0,
        stack_shift: 0,
        env: 0,
        size: InputSize::Test,
        budget: 0,
    }
}

fn counter(name: &str) -> u64 {
    telemetry::metrics().counter(name).get()
}

/// The kill-and-restart differential: crash a daemon three items into a
/// five-item sweep, restart it over the same journal directory, and the
/// resumed sweep must (a) answer byte-identically to a never-crashed
/// direct sweep, (b) replay exactly the journaled items instead of
/// re-simulating them — pinned via `serve.sweep.resumed_items` — and
/// (c) leave no torn lines, no `.tmp` leaks, and no journal file behind.
#[test]
fn killed_mid_sweep_resumes_byte_identical() {
    let _guard = faults::scoped(&spec("seed=1"));
    let journal_dir =
        std::env::temp_dir().join(format!("biaslab-scrash-journal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&journal_dir);

    let s = sweep_spec();
    let envs: Vec<u64> = vec![0, 64, 128, 256, 612];
    let digest = sweep_digest(&s, &envs);
    let journal_path = journal_dir.join(format!("{digest:016x}.jsonl"));

    // Phase 1: the third journal append tears the file and kills the
    // worker — the in-process stand-in for `kill -9` mid-fsync.
    faults::install(&spec("seed=707,serve.crash_before_journal_fsync=@3"));
    let addr = temp_sock("phase1");
    let mut cfg = ServerConfig::new(addr.clone());
    cfg.journal_dir = Some(journal_dir.clone());
    let server = Server::start(&cfg, Arc::new(Orchestrator::default())).expect("server starts");
    let journaled_before = counter("serve.sweep.journal_items");
    let mut client = Client::new(addr);
    let ex = client
        .request(&encode_sweep(9, &s, &envs))
        .expect("the crash still yields a typed terminal, not a hang");
    assert_eq!(
        serve::line_status(ex.terminal()),
        Some("err"),
        "crashed sweep ends in a typed error: {}",
        ex.terminal()
    );
    assert!(
        ex.terminal().contains("\"code\":\"panic\""),
        "crash surfaces as the worker-panic error: {}",
        ex.terminal()
    );
    let journaled = counter("serve.sweep.journal_items") - journaled_before;
    assert_eq!(journaled, 2, "two appends land before the third crashes");
    server.shutdown();

    // The journal survives the crash: the journaled items are intact and
    // sealed, the torn half-line tail is present but fails its seal.
    let raw = std::fs::read_to_string(&journal_path).expect("journal file survives the crash");
    let lines: Vec<&str> = raw.lines().collect();
    assert_eq!(lines.len(), 3, "two sealed lines plus the torn tail");
    assert!(serve::verify_sealed(lines[0]) && serve::verify_sealed(lines[1]));
    assert!(
        !serve::verify_sealed(lines[2]),
        "the torn tail must not verify: {}",
        lines[2]
    );

    // Phase 2: restart (fresh daemon, fresh orchestrator — nothing cached
    // in memory) over the same journal directory, faults cleared.
    faults::install(&spec("seed=1"));
    let addr = temp_sock("phase2");
    let mut cfg = ServerConfig::new(addr.clone());
    cfg.journal_dir = Some(journal_dir.clone());
    let server = Server::start(&cfg, Arc::new(Orchestrator::default())).expect("server restarts");
    let resumed_before = counter("serve.sweep.resumed_items");
    let journaled_before = counter("serve.sweep.journal_items");
    let mut client = Client::new(addr);
    let ex = client
        .request(&encode_sweep(77, &s, &envs))
        .expect("resumed sweep completes");

    // Byte-identity against the never-crashed direct path.
    let direct = Orchestrator::default();
    let harness = direct.harness(&s.bench).expect("known benchmark");
    let setups = sweep_setups(&s.setup().expect("known machine"), &envs);
    let mut expected: Vec<String> = setups
        .iter()
        .enumerate()
        .map(|(seq, setup)| {
            let r = direct.measure(&harness, setup, s.size);
            encode_sweep_item(77, seq as u64, &r)
        })
        .collect();
    expected.push(encode_sweep_done(77, envs.len() as u64));
    for line in &ex.lines {
        validate_response_line(line).expect("resumed lines are sealed and schema-valid");
    }
    assert_eq!(
        ex.lines, expected,
        "resumed sweep diverged from the never-crashed sweep"
    );

    // Exactly the journaled items were replayed; only the rest were
    // simulated and journaled fresh. No item is double-counted.
    assert_eq!(
        counter("serve.sweep.resumed_items") - resumed_before,
        journaled,
        "every journaled item replayed, none re-simulated"
    );
    assert_eq!(
        counter("serve.sweep.journal_items") - journaled_before,
        envs.len() as u64 - journaled,
        "only the missing items were simulated and journaled"
    );
    server.shutdown();

    // A completed sweep cleans up after itself: no journal, no tmp files.
    assert!(
        !journal_path.exists(),
        "completed sweep must remove its journal"
    );
    let leftovers: Vec<String> = std::fs::read_dir(&journal_dir)
        .expect("journal dir readable")
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .to_string_lossy()
                .into_owned()
        })
        .collect();
    assert!(
        leftovers.is_empty(),
        "journal dir must be clean, found {leftovers:?}"
    );
    let _ = std::fs::remove_dir_all(&journal_dir);
}

/// Back-to-back crashes accumulate: a second kill later in the same sweep
/// extends the journal rather than restarting it, and the third run
/// finishes from the union of both journals' items.
#[test]
fn repeated_crashes_accumulate_journal_progress() {
    let _guard = faults::scoped(&spec("seed=1"));
    let journal_dir =
        std::env::temp_dir().join(format!("biaslab-scrash2-journal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&journal_dir);

    let mut s = sweep_spec();
    s.bench = "mcf".to_owned();
    let envs: Vec<u64> = vec![0, 64, 128, 256];

    // Crash after 1 append, then after 2 more, then run clean.
    let schedules = [
        Some("seed=808,serve.crash_before_journal_fsync=@2"),
        Some("seed=808,serve.crash_before_journal_fsync=@3"),
        None,
    ];
    let mut last = None;
    for (phase, schedule) in schedules.iter().enumerate() {
        faults::install(&spec(schedule.unwrap_or("seed=1")));
        let addr = temp_sock(&format!("acc{phase}"));
        let mut cfg = ServerConfig::new(addr.clone());
        cfg.journal_dir = Some(journal_dir.clone());
        let server = Server::start(&cfg, Arc::new(Orchestrator::default())).expect("server starts");
        let mut client = Client::new(addr);
        let ex = client
            .request(&encode_sweep(5, &s, &envs))
            .expect("terminal always arrives");
        if schedule.is_some() {
            assert_eq!(serve::line_status(ex.terminal()), Some("err"));
        } else {
            last = Some(ex.lines.clone());
        }
        server.shutdown();
    }

    let direct = Orchestrator::default();
    let harness = direct.harness(&s.bench).expect("known benchmark");
    let setups = sweep_setups(&s.setup().expect("known machine"), &envs);
    let mut expected: Vec<String> = setups
        .iter()
        .enumerate()
        .map(|(seq, setup)| {
            let r = direct.measure(&harness, setup, s.size);
            encode_sweep_item(5, seq as u64, &r)
        })
        .collect();
    expected.push(encode_sweep_done(5, envs.len() as u64));
    assert_eq!(
        last.expect("clean phase ran"),
        expected,
        "twice-crashed sweep still converges byte-identically"
    );
    let _ = std::fs::remove_dir_all(&journal_dir);
}
