//! Failure-injection tests: every error path a user can reach must produce
//! a typed, descriptive error rather than a panic or a silent wrong answer.

use biaslab_core::harness::{Harness, MeasureError};
use biaslab_core::setup::ExperimentSetup;
use biaslab_toolchain::codegen::compile;
use biaslab_toolchain::link::{LinkError, Linker};
use biaslab_toolchain::load::{Environment, LoadError, Loader};
use biaslab_toolchain::opt::{optimize, OptLevel};
use biaslab_toolchain::ModuleBuilder;
use biaslab_uarch::{Machine, MachineConfig, RunError};
use biaslab_workloads::{benchmark_by_name, InputSize};

#[test]
fn linker_rejects_non_permutation_orders() {
    let h = Harness::new(benchmark_by_name("milc").expect("known"));
    let n = h.object_names().len();
    let err = h.executable(OptLevel::O2, &vec![0; n], 0).unwrap_err();
    assert_eq!(err, LinkError::BadOrder);
    let err = h.executable(OptLevel::O2, &[0], 0).unwrap_err();
    assert_eq!(err, LinkError::BadOrder);
}

#[test]
fn linker_rejects_unknown_entry_and_symbols() {
    let mut mb = ModuleBuilder::new();
    mb.function("main", 0, false, |fb| fb.ret(None));
    let m = mb.finish().unwrap();
    let cm = compile(&optimize(&m, OptLevel::O0), OptLevel::O0);
    let err = Linker::new().link(&cm, "start").unwrap_err();
    assert!(matches!(err, LinkError::UnknownEntry(ref s) if s == "start"));
    assert!(err.to_string().contains("start"));

    // A dangling call relocation must name the missing symbol.
    let mut broken = cm.clone();
    broken.objects[0]
        .relocs
        .push(biaslab_toolchain::obj::Reloc {
            at: 0,
            kind: biaslab_toolchain::obj::RelocKind::Call {
                symbol: "ghost".into(),
            },
        });
    // Make the patch target a jal so the reloc is structurally valid.
    broken.objects[0].code[0] = biaslab_isa::Inst::Jal {
        rd: biaslab_isa::Reg::RA,
        offset: 0,
    };
    let err = Linker::new().link(&broken, "main").unwrap_err();
    assert!(matches!(err, LinkError::UnknownSymbol(ref s) if s == "ghost"));
}

#[test]
fn loader_errors_are_typed() {
    let mut mb = ModuleBuilder::new();
    mb.function("main", 0, false, |fb| fb.ret(None));
    let m = mb.finish().unwrap();
    let exe = Linker::new()
        .link(&compile(&optimize(&m, OptLevel::O0), OptLevel::O0), "main")
        .unwrap();
    let err = Loader::new()
        .load(&exe, &Environment::new(), &[0; 7])
        .unwrap_err();
    assert_eq!(err, LoadError::TooManyArgs(7));
    let err = Loader::new()
        .load(&exe, &Environment::of_total_size(600_000), &[])
        .unwrap_err();
    assert!(matches!(err, LoadError::EnvTooLarge(_)));
    assert!(err.to_string().contains("environment"));
}

#[test]
fn runaway_programs_hit_the_budget_not_a_hang() {
    let mut mb = ModuleBuilder::new();
    mb.function("spin", 0, false, |fb| {
        let b = fb.new_block();
        fb.jump(b);
        fb.switch_to(b);
        fb.jump(b);
    });
    let m = mb.finish().unwrap();
    let exe = Linker::new()
        .link(&compile(&optimize(&m, OptLevel::O2), OptLevel::O2), "spin")
        .unwrap();
    let mut config = MachineConfig::o3cpu();
    config.max_instructions = 5_000;
    let process = Loader::new().load(&exe, &Environment::new(), &[]).unwrap();
    let err = Machine::new(config).run(&exe, process).unwrap_err();
    assert_eq!(err, RunError::Budget(5_000));
    assert!(err.to_string().contains("budget"));
}

#[test]
fn harness_propagates_stage_errors() {
    let h = Harness::new(benchmark_by_name("hmmer").expect("known"));
    let mut setup = ExperimentSetup::default_on(MachineConfig::core2(), OptLevel::O2);
    setup.env = Environment::of_total_size(600_000);
    let err = h.measure(&setup, InputSize::Test).unwrap_err();
    assert!(matches!(err, MeasureError::Load(_)), "{err}");
    assert!(err.to_string().starts_with("load:"));
}

#[test]
fn harness_detects_wrong_results() {
    // Simulate a "toolchain bug" by lying about the arguments: measure with
    // the Test binary but a setup that runs different work than `expected`
    // was computed for cannot happen through the public API, so instead
    // check the error type is constructible and displayed usefully.
    let err = MeasureError::WrongResult {
        expected: 0xAB,
        actual: 0xCD,
    };
    let text = err.to_string();
    assert!(text.contains("0xcd") && text.contains("0xab"), "{text}");
}

#[test]
fn interpreter_depth_limit_is_an_error_not_a_stack_overflow() {
    use biaslab_toolchain::interp::{InterpError, Interpreter};
    // The interpreter recurses natively up to its depth limit; unoptimized
    // frames at 2048 deep need more than the test harness's default thread
    // stack, so give the limit room to fire before the native stack runs out.
    let err = std::thread::Builder::new()
        .stack_size(64 * 1024 * 1024)
        .spawn(|| {
            let mut mb = ModuleBuilder::new();
            let f = mb.declare("forever", 1, true);
            mb.define(f, |fb| {
                let x = fb.param(0);
                let v = fb.get(x);
                let r = fb.call(f, &[v]);
                fb.ret(Some(r));
            });
            let m = mb.finish().unwrap();
            Interpreter::new(&m)
                .call_by_name("forever", &[1])
                .unwrap_err()
        })
        .expect("spawn")
        .join()
        .expect("no stack overflow");
    assert_eq!(err, InterpError::DepthExceeded);
}
