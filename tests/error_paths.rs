//! Failure-injection tests: every error path a user can reach must produce
//! a typed, descriptive error rather than a panic or a silent wrong answer.

use biaslab_core::faults::{self, FaultSpec};
use biaslab_core::harness::{Harness, MeasureError};
use biaslab_core::setup::ExperimentSetup;
use biaslab_core::Orchestrator;
use biaslab_toolchain::codegen::compile;
use biaslab_toolchain::link::{LinkError, Linker};
use biaslab_toolchain::load::{Environment, LoadError, Loader};
use biaslab_toolchain::opt::{optimize, OptLevel};
use biaslab_toolchain::ModuleBuilder;
use biaslab_uarch::{Machine, MachineConfig, RunError};
use biaslab_workloads::{benchmark_by_name, InputSize};

#[test]
fn linker_rejects_non_permutation_orders() {
    let h = Harness::new(benchmark_by_name("milc").expect("known"));
    let n = h.object_names().len();
    let err = h.executable(OptLevel::O2, &vec![0; n], 0).unwrap_err();
    assert_eq!(err, LinkError::BadOrder);
    let err = h.executable(OptLevel::O2, &[0], 0).unwrap_err();
    assert_eq!(err, LinkError::BadOrder);
}

#[test]
fn linker_rejects_unknown_entry_and_symbols() {
    let mut mb = ModuleBuilder::new();
    mb.function("main", 0, false, |fb| fb.ret(None));
    let m = mb.finish().unwrap();
    let cm = compile(&optimize(&m, OptLevel::O0), OptLevel::O0);
    let err = Linker::new().link(&cm, "start").unwrap_err();
    assert!(matches!(err, LinkError::UnknownEntry(ref s) if s == "start"));
    assert!(err.to_string().contains("start"));

    // A dangling call relocation must name the missing symbol.
    let mut broken = cm.clone();
    broken.objects[0]
        .relocs
        .push(biaslab_toolchain::obj::Reloc {
            at: 0,
            kind: biaslab_toolchain::obj::RelocKind::Call {
                symbol: "ghost".into(),
            },
        });
    // Make the patch target a jal so the reloc is structurally valid.
    broken.objects[0].code[0] = biaslab_isa::Inst::Jal {
        rd: biaslab_isa::Reg::RA,
        offset: 0,
    };
    let err = Linker::new().link(&broken, "main").unwrap_err();
    assert!(matches!(err, LinkError::UnknownSymbol(ref s) if s == "ghost"));
}

#[test]
fn loader_errors_are_typed() {
    let mut mb = ModuleBuilder::new();
    mb.function("main", 0, false, |fb| fb.ret(None));
    let m = mb.finish().unwrap();
    let exe = Linker::new()
        .link(&compile(&optimize(&m, OptLevel::O0), OptLevel::O0), "main")
        .unwrap();
    let err = Loader::new()
        .load(&exe, &Environment::new(), &[0; 7])
        .unwrap_err();
    assert_eq!(err, LoadError::TooManyArgs(7));
    let err = Loader::new()
        .load(&exe, &Environment::of_total_size(600_000), &[])
        .unwrap_err();
    assert!(matches!(err, LoadError::EnvTooLarge(_)));
    assert!(err.to_string().contains("environment"));
}

#[test]
fn runaway_programs_hit_the_budget_not_a_hang() {
    let mut mb = ModuleBuilder::new();
    mb.function("spin", 0, false, |fb| {
        let b = fb.new_block();
        fb.jump(b);
        fb.switch_to(b);
        fb.jump(b);
    });
    let m = mb.finish().unwrap();
    let exe = Linker::new()
        .link(&compile(&optimize(&m, OptLevel::O2), OptLevel::O2), "spin")
        .unwrap();
    let mut config = MachineConfig::o3cpu();
    config.max_instructions = 5_000;
    let process = Loader::new().load(&exe, &Environment::new(), &[]).unwrap();
    let err = Machine::new(config).run(&exe, process).unwrap_err();
    assert_eq!(err, RunError::Budget(5_000));
    assert!(err.to_string().contains("budget"));
}

#[test]
fn harness_propagates_stage_errors() {
    let h = Harness::new(benchmark_by_name("hmmer").expect("known"));
    let mut setup = ExperimentSetup::default_on(MachineConfig::core2(), OptLevel::O2);
    setup.env = Environment::of_total_size(600_000);
    let err = h.measure(&setup, InputSize::Test).unwrap_err();
    assert!(matches!(err, MeasureError::Load(_)), "{err}");
    assert!(err.to_string().starts_with("load:"));
}

#[test]
fn harness_detects_wrong_results() {
    // Simulate a "toolchain bug" by lying about the arguments: measure with
    // the Test binary but a setup that runs different work than `expected`
    // was computed for cannot happen through the public API, so instead
    // check the error type is constructible and displayed usefully.
    let err = MeasureError::WrongResult {
        expected: 0xAB,
        actual: 0xCD,
    };
    let text = err.to_string();
    assert!(text.contains("0xcd") && text.contains("0xab"), "{text}");
}

/// Regression for the poisoned-leader deadlock: a single-flight leader
/// dying mid-simulation used to poison the cell mutex and wedge every
/// waiter on an `expect`. Now the waiters elect a new leader and finish.
#[test]
fn hard_leader_panic_is_confined_and_waiters_take_over() {
    let _guard = faults::scoped(&FaultSpec::parse("seed=9,leader.panic.hard=@1").expect("parses"));
    let orch = Orchestrator::new();
    let h = orch.harness("hmmer").expect("known benchmark");
    let setup = ExperimentSetup::default_on(MachineConfig::core2(), OptLevel::O2);
    let barrier = std::sync::Barrier::new(4);
    let outcomes: Vec<std::thread::Result<_>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                s.spawn(|| {
                    barrier.wait();
                    orch.measure(&h, &setup, InputSize::Test)
                })
            })
            .collect();
        handles.into_iter().map(|j| j.join()).collect()
    });
    // Exactly the first-elected leader dies on the injected unrecoverable
    // panic; the surviving racers take over and agree on one measurement.
    let (dead, alive): (Vec<_>, Vec<_>) = outcomes.into_iter().partition(Result::is_err);
    assert_eq!(dead.len(), 1, "exactly the first leader dies");
    let counters: Vec<_> = alive
        .into_iter()
        .map(|r| r.expect("joined").expect("measurement").counters)
        .collect();
    assert_eq!(counters.len(), 3);
    assert!(counters.windows(2).all(|w| w[0] == w[1]));
    // No lock is poisoned and no cell is wedged: the same key now serves
    // from cache, and the takeover round simulated exactly once.
    let again = orch.measure(&h, &setup, InputSize::Test).expect("cached");
    assert_eq!(again.counters, counters[0]);
    assert_eq!(
        orch.stats().simulated,
        1,
        "one simulation despite the takeover"
    );
}

/// A crashed writer's results file — torn tail line, bit-flipped record,
/// foreign junk — loads what survives and quarantines the rest.
#[test]
fn torn_and_corrupt_result_lines_are_quarantined_not_fatal() {
    let orch = Orchestrator::new();
    let h = orch.harness("mcf").expect("known benchmark");
    let setup = ExperimentSetup::default_on(MachineConfig::core2(), OptLevel::O2);
    let m = orch
        .measure(&h, &setup, InputSize::Test)
        .expect("measurement");
    let dir = std::env::temp_dir().join(format!("biaslab-quarantine-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("measurements.jsonl");
    assert_eq!(orch.save(&path).expect("save"), 1);
    let good = std::fs::read_to_string(&path)
        .expect("read back")
        .trim_end()
        .to_string();
    // One intact record, a torn half-line (interrupted writer), a record
    // whose body was flipped after the checksum was stamped, and junk.
    let flipped = good.replacen("\"counters\":[", "\"counters\":[9", 1);
    let mangled = format!(
        "{good}\n{}\n{flipped}\nnot json at all\n",
        &good[..good.len() / 2]
    );
    std::fs::write(&path, mangled).expect("write mangled file");
    let fresh = Orchestrator::new();
    assert_eq!(fresh.load(&path).expect("quarantine is not fatal"), 1);
    let stats = fresh.stats();
    assert_eq!(stats.loaded, 1);
    assert_eq!(stats.quarantined, 2, "torn line and checksum mismatch");
    assert_eq!(stats.pruned, 1, "junk line is ordinary staleness");
    let again = fresh.measure(&h, &setup, InputSize::Test).expect("cached");
    assert_eq!(again.counters, m.counters);
    std::fs::remove_dir_all(&dir).ok();
}

/// A simulation that exhausts its instruction budget surfaces as the
/// typed watchdog error, is retried once, then quarantined via the error
/// cache — re-requests fail fast without re-simulating.
#[test]
fn watchdog_converts_budget_exhaustion_into_a_typed_error() {
    let orch = Orchestrator::new();
    let h = orch.harness("hmmer").expect("known benchmark");
    let mut config = MachineConfig::core2();
    config.max_instructions = 5_000;
    let setup = ExperimentSetup::default_on(config, OptLevel::O2);
    let err = orch.measure(&h, &setup, InputSize::Test).unwrap_err();
    assert!(
        matches!(err, MeasureError::Watchdog { limit: 5_000 }),
        "{err}"
    );
    assert!(err.to_string().contains("watchdog"), "{err}");
    let again = orch.measure(&h, &setup, InputSize::Test).unwrap_err();
    assert!(matches!(again, MeasureError::Watchdog { .. }));
    assert_eq!(orch.stats().simulated, 1, "quarantined error fails fast");
}

#[test]
fn interpreter_depth_limit_is_an_error_not_a_stack_overflow() {
    use biaslab_toolchain::interp::{InterpError, Interpreter};
    // The interpreter recurses natively up to its depth limit; unoptimized
    // frames at 2048 deep need more than the test harness's default thread
    // stack, so give the limit room to fire before the native stack runs out.
    let err = std::thread::Builder::new()
        .stack_size(64 * 1024 * 1024)
        .spawn(|| {
            let mut mb = ModuleBuilder::new();
            let f = mb.declare("forever", 1, true);
            mb.define(f, |fb| {
                let x = fb.param(0);
                let v = fb.get(x);
                let r = fb.call(f, &[v]);
                fb.ret(Some(r));
            });
            let m = mb.finish().unwrap();
            Interpreter::new(&m)
                .call_by_name("forever", &[1])
                .unwrap_err()
        })
        .expect("spawn")
        .join()
        .expect("no stack overflow");
    assert_eq!(err, InterpError::DepthExceeded);
}
