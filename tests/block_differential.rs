//! Differential test for the basic-block dispatch path: block-at-a-time
//! execution must produce bit-identical [`Counters`], checksums and
//! profiles against both the interpreted collapsed path and the
//! event-scheduled path, on every machine model, with and without
//! attribution, across warm repetitions.
//!
//! The block cache hoists static counter sums to block entry, pre-decodes
//! bodies to uops and replays fetch-window crossings from a precomputed
//! table — every one of those rewrites is licensed only by this test: if
//! any counter moves, the "optimization" is a measurement-bias generator.

use biaslab_core::harness::Harness;
use biaslab_toolchain::load::{Environment, Loader};
use biaslab_toolchain::OptLevel;
use biaslab_uarch::{KernelMode, Machine, MachineConfig, RunResult};
use biaslab_workloads::{suite, InputSize};

fn run_with(h: &Harness, machine: &MachineConfig, mode: KernelMode) -> RunResult {
    let order: Vec<usize> = (0..h.object_names().len()).collect();
    let exe = h
        .executable(OptLevel::O2, &order, 0)
        .unwrap_or_else(|e| panic!("{}: {e}", h.benchmark().name()));
    let process = Loader::new()
        .load(
            &exe,
            &Environment::new(),
            h.benchmark().args(InputSize::Test),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", h.benchmark().name()));
    let mut m = Machine::with_kernel(machine.clone(), mode);
    assert_eq!(m.effective_kernel(), mode, "mode must pin the path");
    m.run(&exe, process)
        .unwrap_or_else(|e| panic!("{}/{}: {e}", h.benchmark().name(), machine.name))
}

#[test]
fn block_dispatch_reproduces_both_reference_kernels_bit_for_bit() {
    // Every benchmark against a rotating machine model (the full 72-row
    // cross product lives in the golden sweep, which runs the block path
    // already): block vs collapsed vs event must agree exactly.
    for (i, bench) in suite().into_iter().enumerate() {
        let h = Harness::new(bench);
        let machines = MachineConfig::all();
        let machine = &machines[i % machines.len()];
        let block = run_with(&h, machine, KernelMode::Block);
        let interp = run_with(&h, machine, KernelMode::Collapsed);
        assert_eq!(
            block.counters,
            interp.counters,
            "{}/{}: block vs interpreted counters disagree",
            h.benchmark().name(),
            machine.name
        );
        assert_eq!(block.checksum, interp.checksum);
        assert_eq!(block.return_value, interp.return_value);
        let event = run_with(&h, machine, KernelMode::Event);
        assert_eq!(
            block.counters,
            event.counters,
            "{}/{}: block vs event counters disagree",
            h.benchmark().name(),
            machine.name
        );
        assert_eq!(block.checksum, event.checksum);
    }
}

#[test]
fn block_dispatch_profiles_identically_to_the_interpreter() {
    // Attribution accrues per block on the block path (one span per
    // block, deltas telescoping over the body) and per instruction on the
    // interpreted path; the resulting profiles must be the same object.
    let bench = suite().into_iter().next().expect("non-empty suite");
    let h = Harness::new(bench);
    let order: Vec<usize> = (0..h.object_names().len()).collect();
    for machine in MachineConfig::all() {
        let exe = h.executable(OptLevel::O2, &order, 0).expect("links");
        let load = || {
            Loader::new()
                .load(
                    &exe,
                    &Environment::new(),
                    h.benchmark().args(InputSize::Test),
                )
                .expect("loads")
        };
        let mut block = Machine::with_kernel(machine.clone(), KernelMode::Block);
        let (block_result, block_profile) = block.run_profiled(&exe, load()).expect("runs");
        let mut interp = Machine::with_kernel(machine.clone(), KernelMode::Collapsed);
        let (interp_result, interp_profile) = interp.run_profiled(&exe, load()).expect("runs");
        assert_eq!(
            block_result, interp_result,
            "{}: profiled run results disagree",
            machine.name
        );
        assert_eq!(
            block_profile, interp_profile,
            "{}: profiles disagree",
            machine.name
        );
        // Profiling itself must not perturb the block path's counters.
        let mut plain = Machine::with_kernel(machine.clone(), KernelMode::Block);
        let plain_result = plain.run(&exe, load()).expect("runs");
        assert_eq!(
            block_result, plain_result,
            "{}: attribution changed block-path counters",
            machine.name
        );
    }
}

#[test]
fn warm_repetitions_match_across_all_three_kernels() {
    // Machine state (caches, predictors, bank history) persists across
    // runs; the decoded-block cache additionally persists on the block
    // path and must stay timing-invisible: every repetition must agree
    // with the interpreted kernels, warm hits included.
    let bench = suite().into_iter().next().expect("non-empty suite");
    let h = Harness::new(bench);
    let order: Vec<usize> = (0..h.object_names().len()).collect();
    let exe = h.executable(OptLevel::O2, &order, 0).expect("links");
    let reps = 3;
    let mut per_mode = Vec::new();
    for mode in [KernelMode::Block, KernelMode::Collapsed, KernelMode::Event] {
        let mut m = Machine::with_kernel(MachineConfig::o3cpu(), mode);
        let mut runs = Vec::new();
        for _ in 0..reps {
            let process = Loader::new()
                .load(
                    &exe,
                    &Environment::new(),
                    h.benchmark().args(InputSize::Test),
                )
                .expect("loads");
            runs.push(m.run(&exe, process).expect("runs"));
        }
        per_mode.push(runs);
    }
    assert_eq!(
        per_mode[0], per_mode[1],
        "block vs interpreted warm repetitions diverged"
    );
    assert_eq!(
        per_mode[1], per_mode[2],
        "interpreted vs event warm repetitions diverged"
    );
    assert!(
        per_mode[0][1].counters.cycles <= per_mode[0][0].counters.cycles,
        "second repetition should not be colder than the first"
    );
}
