//! Property-based integration tests: the semantic invariants hold for
//! *arbitrary* setup-factor values, not just the swept ones.

use biaslab_core::harness::Harness;
use biaslab_core::setup::{ExperimentSetup, LinkOrder};
use biaslab_toolchain::load::Environment;
use biaslab_toolchain::OptLevel;
use biaslab_uarch::MachineConfig;
use biaslab_workloads::{benchmark_by_name, InputSize};
use proptest::prelude::*;

fn quick_config() -> ProptestConfig {
    // Each case compiles nothing new (caches) but simulates ~10^5
    // instructions; keep the case count modest.
    ProptestConfig {
        cases: 8,
        ..ProptestConfig::default()
    }
}

proptest! {
    #![proptest_config(quick_config())]

    #[test]
    fn any_environment_size_preserves_semantics(bytes in 23u32..6000) {
        let h = Harness::new(benchmark_by_name("hmmer").expect("known"));
        let base = ExperimentSetup::default_on(MachineConfig::o3cpu(), OptLevel::O2);
        let reference = h.measure(&base, InputSize::Test).expect("baseline");
        let m = h
            .measure(&base.with_env(Environment::of_total_size(bytes)), InputSize::Test)
            .expect("env measurement");
        prop_assert_eq!(m.checksum, reference.checksum);
        prop_assert_eq!(m.counters.instructions, reference.counters.instructions);
    }

    #[test]
    fn any_link_order_preserves_semantics(seed in any::<u64>()) {
        let h = Harness::new(benchmark_by_name("milc").expect("known"));
        let base = ExperimentSetup::default_on(MachineConfig::core2(), OptLevel::O3);
        let reference = h.measure(&base, InputSize::Test).expect("baseline");
        let m = h
            .measure(&base.with_link_order(LinkOrder::Random(seed)), InputSize::Test)
            .expect("order measurement");
        prop_assert_eq!(m.checksum, reference.checksum);
    }

    #[test]
    fn any_stack_shift_preserves_semantics(shift in 0u32..4096) {
        let h = Harness::new(benchmark_by_name("libquantum").expect("known"));
        let mut setup = ExperimentSetup::default_on(MachineConfig::pentium4(), OptLevel::O1);
        setup.stack_shift = shift;
        let m = h.measure(&setup, InputSize::Test).expect("shifted measurement");
        let expected = h.benchmark().expected(InputSize::Test);
        prop_assert_eq!(m.checksum, expected.checksum);
    }

    #[test]
    fn random_orders_resolve_to_permutations(seed in any::<u64>(), n in 1usize..40) {
        let names: Vec<String> = (0..n).map(|i| format!("f{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let mut p = LinkOrder::Random(seed).resolve(&refs);
        p.sort_unstable();
        prop_assert_eq!(p, (0..n).collect::<Vec<_>>());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn environment_footprint_is_exact(bytes in 23u32..100_000) {
        prop_assert_eq!(Environment::of_total_size(bytes).stack_bytes(), bytes);
    }

    #[test]
    fn bootstrap_ci_always_contains_the_sample_mean(
        data in proptest::collection::vec(0.5f64..2.0, 3..40),
        seed in any::<u64>(),
    ) {
        let mean = biaslab_core::stats::Summary::of(&data).mean;
        let ci = biaslab_core::stats::bootstrap_ci_mean(&data, 0.95, 500, seed);
        // Percentile bootstrap over resampled means brackets the point
        // estimate for any sample.
        prop_assert!(ci.lo <= mean + 1e-9 && mean - 1e-9 <= ci.hi);
    }

    #[test]
    fn violin_quantiles_are_monotone(
        data in proptest::collection::vec(-1e6f64..1e6, 1..100),
    ) {
        let v = biaslab_core::stats::ViolinSummary::of(&data);
        for w in v.values.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }
}
