//! Offline stand-in for `criterion`.
//!
//! Implements the builder/bench API surface this workspace's benches use.
//! Instead of statistical sampling it runs each benchmark closure
//! `sample_size` times, timing every iteration individually, and prints
//! the *minimum* wall time per iteration — enough to track gross
//! regressions from `cargo bench` without any external dependencies.
//!
//! The minimum, not the mean: this workspace's own subject matter. On a
//! shared or virtualized host, interference (scheduler steal, cache
//! pollution from neighbours) only ever *adds* time, so the mean measures
//! the host's load as much as the code under test. The fastest observed
//! iteration is a one-sided estimator of the code's true cost and is what
//! CI thresholds compare against.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing a value away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark runs.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; warm-up is a single untimed run.
    #[must_use]
    pub fn warm_up_time(self, _d: Duration) -> Criterion {
        self
    }

    /// Accepted for API compatibility; the iteration count is fixed by
    /// [`Criterion::sample_size`], not a time budget.
    #[must_use]
    pub fn measurement_time(self, _d: Duration) -> Criterion {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark in the group runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// How [`Bencher::iter_batched`] amortizes its setup closure. The upstream
/// variants tune batch granularity; this stand-in always runs setup once
/// per iteration (outside the timed region), so the variants only exist
/// for source compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Inputs are cheap to construct.
    SmallInput,
    /// Inputs are expensive to construct.
    LargeInput,
    /// Construct one input per iteration.
    PerIteration,
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    iters: usize,
    best: Duration,
}

impl Bencher {
    /// Times `f` over the configured iteration count, keeping the fastest
    /// single iteration (see the module docs for why the minimum).
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // One untimed warm-up pass, then the timed iterations.
        black_box(f());
        let mut best = Duration::MAX;
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(f());
            best = best.min(start.elapsed());
        }
        self.best = best;
    }

    /// Times `f` over inputs built by `setup`; only `f` is timed, so
    /// per-iteration state construction stays out of the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut f: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // One untimed warm-up pass, then the timed iterations.
        black_box(f(setup()));
        let mut best = Duration::MAX;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(f(input));
            best = best.min(start.elapsed());
        }
        self.best = best;
    }
}

fn run_one<F>(id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        iters: sample_size,
        best: Duration::ZERO,
    };
    f(&mut b);
    println!(
        "bench {id:<40} {:>12.3} us/iter (min of {sample_size})",
        b.best.as_secs_f64() * 1e6
    );
}

/// Declares a benchmark group function, in either the positional or the
/// `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut hits = 0usize;
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("probe", |b| b.iter(|| hits += 1));
        // 3 timed + 1 warm-up iteration.
        assert_eq!(hits, 4);
    }

    #[test]
    fn iter_batched_builds_one_input_per_iteration() {
        let mut setups = 0usize;
        let mut runs = 0usize;
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |input| {
                    runs += 1;
                    input
                },
                BatchSize::SmallInput,
            )
        });
        // 3 timed + 1 warm-up iteration, each with its own setup.
        assert_eq!(setups, 4);
        assert_eq!(runs, 4);
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut hits = 0usize;
        group.bench_function("probe", |b| b.iter(|| hits += 1));
        group.finish();
        assert_eq!(hits, 3);
    }

    criterion_group!(positional_form, noop_bench);
    criterion_group! {
        name = named_form;
        config = Criterion::default().sample_size(2);
        targets = noop_bench
    }

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| ()));
    }

    #[test]
    fn group_macros_expand_to_runnable_fns() {
        positional_form();
        named_form();
    }
}
