//! No-op derive macros for the offline `serde` stand-in.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types but
//! never serializes through serde itself (persistence is hand-rolled
//! JSON in `biaslab-core`), so the derives can expand to nothing while
//! still accepting `#[serde(...)]` helper attributes.

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
