//! Offline stand-in for `parking_lot`.
//!
//! Non-poisoning `Mutex`/`RwLock` with the `parking_lot` API shape,
//! implemented over `std::sync`. A poisoned std lock is recovered rather
//! than propagated, matching parking_lot's no-poisoning semantics.

#![forbid(unsafe_code)]

use std::sync;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a lock around `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock around `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
