//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the subset of the `rand 0.8` API the workspace uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`] over
//! integer ranges, and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — deterministic
//! across platforms and runs, which is all the workspace requires (every
//! caller passes an explicit seed; statistical quality only has to be good
//! enough for bootstrap resampling and permutation shuffles).

#![forbid(unsafe_code)]

pub mod rngs;
pub mod seq;

/// Types that can be sampled uniformly from their full domain by
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (reject_sample(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + (reject_sample(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Uniform draw from `0..span` without modulo bias (rejection sampling).
fn reject_sample<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from a type's full domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform draw from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_seed_u64(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_repeat_and_differ() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(10..20u32);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..3usize);
            assert!(w < 3);
            let x: u32 = rng.gen_range(0..=5u32);
            assert!(x <= 5);
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..400 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn shuffle_is_a_seeded_permutation() {
        use crate::seq::SliceRandom;
        let mut a: Vec<usize> = (0..10).collect();
        let mut b: Vec<usize> = (0..10).collect();
        a.shuffle(&mut StdRng::seed_from_u64(3));
        b.shuffle(&mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
        let mut c: Vec<usize> = (0..10).collect();
        c.shuffle(&mut StdRng::seed_from_u64(4));
        assert_ne!(a, c, "different seeds should give different orders");
    }
}
