//! Concrete generators.

/// The workspace's standard deterministic generator: xoshiro256**,
/// seeded through SplitMix64 (the reference seeding procedure).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Builds the generator state from a 64-bit seed.
    #[must_use]
    pub fn from_seed_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// The next 64 random bits.
    #[allow(clippy::should_implement_trait)] // a PRNG step, not an Iterator
    pub fn next(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
