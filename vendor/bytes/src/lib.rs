//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is a cheaply cloneable, sliceable view of shared immutable
//! bytes; [`BytesMut`] is a growable buffer. Only the little-endian
//! accessors the workspace's object-file format uses are provided.

#![forbid(unsafe_code)]

use std::ops::RangeBounds;
use std::sync::Arc;

/// Shared immutable bytes with O(1) clone and slice.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The bytes as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the view into a fresh vector.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// A sub-view of the buffer.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => len,
        };
        assert!(
            lo <= hi && hi <= len,
            "slice {lo}..{hi} out of bounds of {len}"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Splits off and returns the first `n` bytes, advancing `self`.
    ///
    /// # Panics
    ///
    /// Panics if `n > len`.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(
            n <= self.len(),
            "split_to({n}) out of bounds of {}",
            self.len()
        );
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + n,
        };
        self.start += n;
        head
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::from(v.to_vec())
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

/// Reading little-endian scalars off the front of a buffer.
///
/// Accessors panic when the buffer is too short, like the real crate;
/// callers check [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads and consumes one byte.
    fn get_u8(&mut self) -> u8;

    /// Reads and consumes a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;

    /// Reads and consumes a little-endian `i32`.
    fn get_i32_le(&mut self) -> i32 {
        self.get_u32_le() as i32
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let b = self.split_to(1);
        b.as_slice()[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        let b = self.split_to(4);
        u32::from_le_bytes(b.as_slice().try_into().expect("4 bytes"))
    }
}

/// Appending scalars and slices to a buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u8(7);
        buf.put_i32_le(-5);
        buf.put_slice(b"hi");
        let mut b = buf.freeze();
        assert_eq!(b.remaining(), 11);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_i32_le(), -5);
        assert_eq!(b.to_vec(), b"hi");
    }

    #[test]
    fn slice_and_split_views() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let mid = b.slice(2..5);
        assert_eq!(mid.to_vec(), vec![2, 3, 4]);
        let mut rest = mid.clone();
        let head = rest.split_to(1);
        assert_eq!(head.to_vec(), vec![2]);
        assert_eq!(rest.to_vec(), vec![3, 4]);
        assert_eq!(b.len(), 6, "views never disturb the parent");
    }
}
