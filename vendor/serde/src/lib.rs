//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io. The workspace only
//! uses serde for `#[derive(Serialize, Deserialize)]` markers (no code
//! path serializes through serde), so this crate re-exports no-op derive
//! macros under the expected names. Actual persistence in the workspace
//! is hand-rolled JSON (see `biaslab_core::orchestrator`).

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};
