//! `any::<T>()` and the `Arbitrary` trait behind it.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),+ $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.f64_unit()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// A strategy over the whole domain of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_covers_signs_and_bools() {
        let mut rng = TestRng::deterministic("any");
        let mut neg = false;
        let mut pos = false;
        let mut t = false;
        let mut f = false;
        for _ in 0..200 {
            let v = any::<i32>().generate(&mut rng);
            neg |= v < 0;
            pos |= v > 0;
            let b = any::<bool>().generate(&mut rng);
            t |= b;
            f |= !b;
        }
        assert!(neg && pos && t && f);
    }
}
