//! The `Strategy` trait and its combinators.
//!
//! A strategy generates values directly from a [`TestRng`]; there is no
//! shrinking tree. Combinators mirror the upstream names so test code is
//! source-compatible.

use std::rc::Rc;

use crate::test_runner::TestRng;

/// A generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Feeds generated values into `f` to pick a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Builds a recursive strategy: `self` is the leaf case and `recurse`
    /// wraps an inner strategy into the branching cases. The recursion is
    /// expanded `depth` times at construction, so generated values are
    /// depth-bounded by design. `desired_size` and `expected_branch_size`
    /// are accepted for signature compatibility; the construction-time
    /// expansion already bounds total size.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            // Keep a leaf escape hatch at every level so trees vary in
            // depth rather than always bottoming out at `depth`.
            let branch = recurse(strat).boxed();
            strat = Union::from_parts(vec![(1, leaf.clone()), (3, branch)]).boxed();
        }
        strat
    }

    /// Type-erases the strategy. The result is cheaply cloneable.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }

    fn boxed(self) -> BoxedStrategy<T>
    where
        Self: Sized + 'static,
    {
        self
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A weighted choice among boxed strategies; the `prop_oneof!` backend.
pub struct Union<T> {
    parts: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or every weight is zero.
    #[must_use]
    pub fn from_parts(parts: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!parts.is_empty(), "prop_oneof! needs at least one arm");
        assert!(
            parts.iter().any(|(w, _)| *w > 0),
            "prop_oneof! needs a nonzero weight"
        );
        Union { parts }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.parts.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.below(total);
        for (w, strat) in &self.parts {
            let w = u64::from(*w);
            if pick < w {
                return strat.generate(rng);
            }
            pick -= w;
        }
        unreachable!("pick is bounded by the weight total")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                let off = rng.below(span as u64) as i128;
                ((self.start as i128) + off) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "empty range strategy");
                let span = hi - lo + 1;
                let off = if span > i128::from(u64::MAX) {
                    i128::from(rng.next_u64())
                } else {
                    i128::from(rng.below(span as u64))
                };
                (lo + off) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.f64_unit() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..500 {
            let a = (3u8..9).generate(&mut rng);
            assert!((3..9).contains(&a));
            let b = (-10i32..10).generate(&mut rng);
            assert!((-10..10).contains(&b));
            let c = (1u8..=255).generate(&mut rng);
            assert!(c >= 1);
            let d = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&d));
        }
    }

    #[test]
    fn map_and_tuples_compose() {
        let mut rng = TestRng::deterministic("compose");
        let strat = (0u8..4, (0u8..4).prop_map(|v| i32::from(v) * 10));
        for _ in 0..100 {
            let (a, b) = strat.generate(&mut rng);
            assert!(a < 4);
            assert!(b % 10 == 0 && b <= 30);
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut rng = TestRng::deterministic("union");
        let u = Union::from_parts(vec![
            (1, Just(0u8).boxed()),
            (1, Just(1u8).boxed()),
            (2, Just(2u8).boxed()),
        ]);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn recursive_strategies_are_depth_bounded() {
        #[derive(Debug)]
        enum Tree {
            Leaf(#[allow(dead_code)] u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0u8..16)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = TestRng::deterministic("trees");
        let mut max_seen = 0;
        for _ in 0..200 {
            max_seen = max_seen.max(depth(&strat.generate(&mut rng)));
        }
        assert!(max_seen <= 4, "depth {max_seen} exceeds requested bound");
        assert!(max_seen >= 1, "recursion never branched");
    }
}
