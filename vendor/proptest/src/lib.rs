//! Offline stand-in for `proptest`.
//!
//! Deterministic property testing: each `proptest!` test derives its RNG
//! seed from the test's own name, generates `config.cases` inputs from
//! the declared strategies, and runs the body as a plain assertion block.
//! There is no shrinking — tests that want a readable failure include the
//! offending inputs in their assertion messages, which the fuzz tests in
//! this workspace already do.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};
pub use strategy::{BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{ProptestConfig, TestRng};

/// Everything a property test needs, plus `prop` as an alias for the
/// crate root (so `prop::sample::Index` resolves).
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            let strat = ($($strat,)+);
            for _ in 0..config.cases {
                let ($($pat,)+) = $crate::Strategy::generate(&strat, &mut rng);
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        assert!($cond)
    };
    ($cond:expr, $($arg:tt)+) => {
        assert!($cond, $($arg)+)
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($arg:tt)+) => {
        assert_eq!($left, $right, $($arg)+)
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($arg:tt)+) => {
        assert_ne!($left, $right, $($arg)+)
    };
}

/// A weighted (`w => strategy`) or uniform (`strategy, ...`) choice.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::from_parts(vec![
            $( (($weight) as u32, $crate::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::from_parts(vec![
            $( (1u32, $crate::Strategy::boxed($strat)) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u32> {
        (0u32..1000).prop_map(|v| v * 2)
    }

    proptest! {
        #[test]
        fn generated_evens_are_even(v in arb_even()) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn oneof_mixes_arms(v in prop_oneof![Just(1u8), Just(2u8)], w in 0u8..3) {
            prop_assert!(v == 1 || v == 2);
            prop_assert!(w < 3, "w was {}", w);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]

        #[test]
        fn config_override_applies(pair in (any::<bool>(), "[ab]{2}")) {
            let (_flag, s) = pair;
            prop_assert_eq!(s.len(), 2);
        }
    }

    #[test]
    fn vec_strategy_via_full_path() {
        let strat = crate::collection::vec(0u8..9, 1..5);
        let mut rng = TestRng::deterministic("full_path");
        let v = crate::Strategy::generate(&strat, &mut rng);
        assert!(!v.is_empty() && v.len() < 5);
    }
}
