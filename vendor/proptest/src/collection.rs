//! Collection strategies: `proptest::collection::vec`.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy for vectors with lengths drawn from `len` (half-open).
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// Vectors of `element` values with a length in `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_elements_in_bounds() {
        let strat = vec(0u8..5, 2..9);
        let mut rng = TestRng::deterministic("vec");
        let mut lens = std::collections::BTreeSet::new();
        for _ in 0..300 {
            let v = strat.generate(&mut rng);
            assert!((2..9).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 5));
            lens.insert(v.len());
        }
        assert!(lens.len() > 3, "length should vary: {lens:?}");
    }
}
