//! Test configuration and the deterministic RNG that drives generation.

/// Per-test configuration. Only `cases` is consulted by the runner; the
/// other fields exist so `..ProptestConfig::default()` updates work.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for API compatibility; shrinking is not implemented, so
    /// failing inputs are reported unshrunk (the `Debug` of the inputs
    /// appears in the assertion message when the test includes it).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// xoshiro256** seeded from a test-name hash: every run of a given test
/// explores the same case sequence, so failures are reproducible without
/// a persistence file.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// An RNG seeded from `name` (normally `stringify!` of the test fn).
    #[must_use]
    pub fn deterministic(name: &str) -> TestRng {
        // FNV-1a over the name, then SplitMix64 to fill the state.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut state = h;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix(&mut state);
        }
        TestRng { s }
    }

    /// Next raw 64-bit draw (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform draw in `0..n` via rejection sampling (no modulo bias).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is an empty range");
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_names_diverge() {
        let mut a = TestRng::deterministic("t1");
        let mut b = TestRng::deterministic("t2");
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn below_stays_in_bounds_and_covers() {
        let mut rng = TestRng::deterministic("bounds");
        let mut seen = [false; 7];
        for _ in 0..500 {
            let v = rng.below(7) as usize;
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable: {seen:?}");
    }

    #[test]
    fn f64_unit_is_half_open() {
        let mut rng = TestRng::deterministic("unit");
        for _ in 0..1000 {
            let v = rng.f64_unit();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
