//! String strategies from regex-like patterns.
//!
//! A `&'static str` is itself a `Strategy<Value = String>`, interpreting
//! the subset of regex syntax the workspace uses: literal characters,
//! `[...]` character classes with ranges, and `{m}` / `{m,n}` repetition
//! of the preceding atom. Unsupported syntax panics at generation time.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

struct Atom {
    choices: Vec<char>,
    min: u32,
    max: u32,
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, pattern: &str) -> Vec<char> {
    let mut out = Vec::new();
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("unterminated class in {pattern:?}"));
        match c {
            ']' => break,
            lo => {
                if chars.peek() == Some(&'-') {
                    chars.next();
                    match chars.peek() {
                        // A '-' right before ']' is a literal dash.
                        Some(']') | None => {
                            out.push(lo);
                            out.push('-');
                        }
                        Some(&hi) => {
                            chars.next();
                            assert!(lo <= hi, "inverted range {lo}-{hi} in {pattern:?}");
                            out.extend(lo..=hi);
                        }
                    }
                } else {
                    out.push(lo);
                }
            }
        }
    }
    assert!(!out.is_empty(), "empty class in {pattern:?}");
    out
}

fn parse_repeat(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, pattern: &str) -> (u32, u32) {
    let mut spec = String::new();
    loop {
        match chars.next() {
            Some('}') => break,
            Some(c) => spec.push(c),
            None => panic!("unterminated repetition in {pattern:?}"),
        }
    }
    let parse = |s: &str| {
        s.trim()
            .parse::<u32>()
            .unwrap_or_else(|_| panic!("bad repetition {{{spec}}} in {pattern:?}"))
    };
    match spec.split_once(',') {
        Some((m, n)) => (parse(m), parse(n)),
        None => {
            let m = parse(&spec);
            (m, m)
        }
    }
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let mut atoms: Vec<Atom> = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '[' => {
                let choices = parse_class(&mut chars, pattern);
                atoms.push(Atom {
                    choices,
                    min: 1,
                    max: 1,
                });
            }
            '{' => {
                let (min, max) = parse_repeat(&mut chars, pattern);
                assert!(min <= max, "inverted repetition in {pattern:?}");
                let last = atoms
                    .last_mut()
                    .unwrap_or_else(|| panic!("repetition with no atom in {pattern:?}"));
                last.min = min;
                last.max = max;
            }
            '*' | '+' | '?' | '(' | ')' | '|' | '.' | '\\' => {
                panic!("unsupported regex syntax {c:?} in {pattern:?}")
            }
            literal => atoms.push(Atom {
                choices: vec![literal],
                min: 1,
                max: 1,
            }),
        }
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let span = u64::from(atom.max - atom.min) + 1;
            let n = atom.min + rng.below(span) as u32;
            for _ in 0..n {
                let pick = rng.below(atom.choices.len() as u64) as usize;
                out.push(atom.choices[pick]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identifier_pattern_generates_valid_names() {
        let strat = "[a-z_][a-z0-9_]{0,24}";
        let mut rng = TestRng::deterministic("ident");
        let mut max_len = 0;
        for _ in 0..300 {
            let s = strat.generate(&mut rng);
            assert!((1..=25).contains(&s.len()), "bad length for {s:?}");
            let mut cs = s.chars();
            let head = cs.next().expect("nonempty");
            assert!(head.is_ascii_lowercase() || head == '_');
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
            max_len = max_len.max(s.len());
        }
        assert!(max_len > 5, "repetition should vary lengths");
    }

    #[test]
    fn literals_and_exact_repeats() {
        let mut rng = TestRng::deterministic("lit");
        assert_eq!("abc".generate(&mut rng), "abc");
        assert_eq!("[x]{3}".generate(&mut rng), "xxx");
    }
}
