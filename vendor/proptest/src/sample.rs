//! Sampling helpers: `prop::sample::Index` and `prop::sample::select`.

use crate::arbitrary::Arbitrary;
use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy yielding a uniformly-drawn clone of one of `values`.
///
/// # Panics
///
/// Panics (at construction) if `values` is empty.
#[must_use]
pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
    assert!(!values.is_empty(), "cannot select from an empty list");
    Select(values)
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T>(Vec<T>);

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0[rng.below(self.0.len() as u64) as usize].clone()
    }
}

/// An index into a collection of yet-unknown length: draw one via
/// `any::<Index>()`, then project with [`Index::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(usize);

impl Index {
    /// Projects onto `0..len`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    #[must_use]
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        self.0 % len
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Index {
        Index(rng.next_u64() as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::any;

    #[test]
    fn select_draws_every_value() {
        let mut rng = TestRng::deterministic("select");
        let strat = select(vec!['a', 'b', 'c']);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[(strat.generate(&mut rng) as u8 - b'a') as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn index_projects_in_bounds() {
        let mut rng = TestRng::deterministic("index");
        for len in [1usize, 2, 7, 1000] {
            for _ in 0..50 {
                let i = any::<Index>().generate(&mut rng);
                assert!(i.index(len) < len);
            }
        }
    }
}
