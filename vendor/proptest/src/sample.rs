//! Sampling helpers: `prop::sample::Index`.

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRng;

/// An index into a collection of yet-unknown length: draw one via
/// `any::<Index>()`, then project with [`Index::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(usize);

impl Index {
    /// Projects onto `0..len`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    #[must_use]
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        self.0 % len
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Index {
        Index(rng.next_u64() as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::any;
    use crate::strategy::Strategy;

    #[test]
    fn index_projects_in_bounds() {
        let mut rng = TestRng::deterministic("index");
        for len in [1usize, 2, 7, 1000] {
            for _ in 0..50 {
                let i = any::<Index>().generate(&mut rng);
                assert!(i.index(len) < len);
            }
        }
    }
}
