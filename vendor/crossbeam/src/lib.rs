//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::scope` with the 0.8 call shape (`scope.spawn`
//! closures receive the scope again, the outer call returns a `Result`
//! that is `Err` if any scoped thread panicked), implemented on
//! `std::thread::scope`.

#![forbid(unsafe_code)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread;

/// A panic payload from a scoped worker.
pub type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// A scope handle: spawn scoped threads that may borrow from the caller.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped worker. The closure receives the scope again, so
    /// workers can spawn further workers (crossbeam's signature).
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a scope; all spawned workers are joined before this
/// returns. Returns `Err` with the first panic payload if any worker (or
/// the closure itself) panicked.
///
/// # Errors
///
/// Returns the panic payload of the scope body or of a panicked worker.
pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
where
    F: FnOnce(&Scope<'_, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn workers_run_and_join() {
        let hits = AtomicUsize::new(0);
        let out = scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| hits.fetch_add(1, Ordering::Relaxed));
            }
        });
        assert!(out.is_ok());
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn worker_panic_is_an_err() {
        let out = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(out.is_err());
    }
}
